//! Bulk structural scanning of raw XML-ish bytes — the simdjson-style fast
//! path behind [`ByteTokenizer`](crate::sax::ByteTokenizer) and
//! [`FrozenByteTokenizer`](crate::sax::FrozenByteTokenizer).
//!
//! The char-at-a-time [`EventLexer`](crate::sax::EventLexer) pulls one
//! decoded scalar per step through a peekable adapter — five or six calls
//! and a `String::push` per input byte. That wall dominates the measured
//! bytes-in → verdict-out pipeline: the compiled engines decide hundreds of
//! millions of events per second while the lexer feeds them tens of
//! megabytes. This module moves every per-byte decision to a per-*run*
//! decision, the way continuous-readout pipelines move validation from
//! per-sample to per-chunk:
//!
//! * bytes are pulled through a `ChunkWindow` — a reusable buffer of
//!   [`SCAN_CHUNK`] bytes refilled from the reader and **UTF-8-validated a
//!   chunk at a time** (an 8-byte-word ASCII fast path, the WHATWG table
//!   only on non-ASCII runs), with a multi-byte sequence split across a
//!   refill seam carried over and re-validated when its tail arrives;
//! * the `StructuralScanner` methods of the internal `BulkLexer` then sweep whole
//!   *runs* of the validated window with unrolled byte loops keyed on the
//!   structural set — `<`, `>`, `&` quotes inside tags, the `-->` / `?>` /
//!   `]]>` terminators — classifying text, tag bodies, CDATA sections,
//!   comments, processing instructions and DOCTYPE internal subsets as
//!   slices, not as characters;
//! * names are resolved straight from window slices through the shared
//!   [`ResolveName`] policy and the event-building
//!   `LexerCore` that the char-level lexer also uses, so the two paths are
//!   token-for-token and error-for-error equivalent (property-tested in
//!   `tests/sax_scan.rs` under adversarial read granularities).
//!
//! Invalid or truncated UTF-8 found by the chunk validator is *deferred*:
//! the window simply ends at the last valid scalar, and the typed
//! [`SaxError`] surfaces exactly when lexing reaches that offset — the same
//! observable order as the incremental decoder, where a token in progress
//! when the bad byte arrives is discarded in favor of the error.

use crate::sax::{LexerCore, ResolveName, SaxError};
use nested_words::{NestedWordError, TaggedSymbol};
use std::io;

/// Default size, in bytes, of the bulk scanning window: the unit reads are
/// requested in, UTF-8 validation runs over, and structural runs are swept
/// from. Shared by [`ByteTokenizer`](crate::sax::ByteTokenizer) /
/// [`FrozenByteTokenizer`](crate::sax::FrozenByteTokenizer) (hence by
/// `queries::run_streaming_reader` and `nwa-service`'s `submit_bytes`,
/// which ride them). 64 KiB: comfortably past the point where per-chunk
/// costs (one `read` call, one validation sweep, one compaction memmove)
/// amortize to noise, while staying L2-resident on every current core.
pub const SCAN_CHUNK: usize = 64 * 1024;

/// What ended a chunk validation sweep.
enum Utf8Stop {
    /// The run ends on a scalar boundary.
    Clean,
    /// The run ends inside a multi-byte sequence whose bytes so far are
    /// consistent — a refill seam, not (yet) an error.
    Incomplete,
    /// The sequence starting at the reported prefix length is invalid.
    Invalid,
}

/// Validates one byte run, returning the length of its longest prefix made
/// of whole valid scalars and what stopped the sweep there.
///
/// ASCII is skipped eight bytes per test (`word & 0x8080…` — the memchr
/// idiom for "any high bit set"); only non-ASCII runs consult the WHATWG
/// second-byte table, which rejects overlong forms (C0/C1, E0 80–9F,
/// F0 80–8F), surrogates (ED A0–BF) and scalars past U+10FFFF (F4 90–BF,
/// F5–FF) — byte-for-byte the same acceptance set as the incremental
/// [`Utf8Chars`](crate::sax::Utf8Chars) decoder.
fn validate_utf8(bytes: &[u8]) -> (usize, Utf8Stop) {
    const HIGH_BITS: u64 = 0x8080_8080_8080_8080;
    let n = bytes.len();
    let mut i = 0;
    while i < n {
        // On the wide backend, swallow whole-vector ASCII runs first; the
        // word loop below keeps the tail and stays the only path on SWAR.
        #[cfg(feature = "simd")]
        {
            i += simd::ascii_run(&bytes[i..]);
            if i >= n {
                break;
            }
        }
        let b = bytes[i];
        if b < 0x80 {
            if i + 8 <= n {
                let word = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte run"));
                if word & HIGH_BITS == 0 {
                    i += 8;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        let (len, min1, max1) = match b {
            0xC2..=0xDF => (2, 0x80, 0xBF),
            0xE0 => (3, 0xA0, 0xBF),
            0xE1..=0xEC | 0xEE..=0xEF => (3, 0x80, 0xBF),
            0xED => (3, 0x80, 0x9F),
            0xF0 => (4, 0x90, 0xBF),
            0xF1..=0xF3 => (4, 0x80, 0xBF),
            0xF4 => (4, 0x80, 0x8F),
            _ => return (i, Utf8Stop::Invalid),
        };
        let avail = (n - i).min(len);
        for j in 1..avail {
            let c = bytes[i + j];
            let (lo, hi) = if j == 1 { (min1, max1) } else { (0x80, 0xBF) };
            if c < lo || c > hi {
                return (i, Utf8Stop::Invalid);
            }
        }
        if avail < len {
            return (i, Utf8Stop::Incomplete);
        }
        i += len;
    }
    (n, Utf8Stop::Clean)
}

/// Decodes the (already validated) scalar starting at `bytes[0]`, returning
/// it with its encoded length. Only reached for non-ASCII bytes on the
/// whitespace/terminator checks, so the common path never runs it.
fn decode_scalar(bytes: &[u8]) -> (char, usize) {
    let b0 = bytes[0];
    debug_assert!(b0 >= 0x80, "ASCII is handled inline by the scan loops");
    let len: usize = match b0 {
        0xC2..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    };
    let mut cp = u32::from(b0) & (0x7F >> len);
    for &b in &bytes[1..len] {
        cp = (cp << 6) | (u32::from(b) & 0x3F);
    }
    (
        char::from_u32(cp).expect("the window holds validated UTF-8"),
        len,
    )
}

/// Is this byte one of the six ASCII characters `char::is_whitespace`
/// accepts (TAB, LF, VT, FF, CR, space)? Non-ASCII whitespace (NBSP, the
/// Unicode space block, line/paragraph separators) is caught by decoding,
/// which only triggers on high bytes.
#[inline(always)]
fn is_ascii_ws(b: u8) -> bool {
    b == b' ' || (0x09..=0x0D).contains(&b)
}

// --------------------------------------------------------------------------
// SWAR word sweeps (the memchr idiom, multi-needle)
// --------------------------------------------------------------------------

const ONES: u64 = 0x0101_0101_0101_0101;
const HIGHS: u64 = 0x8080_8080_8080_8080;

/// Lanes equal to `b`, marked in their high bit (the memchr zero-detect
/// trick on `word ^ splat(b)`). Borrow propagation can set spurious marks,
/// but only in lanes *above* a truly matching lane — so the lowest set
/// mark, which is all the sweeps below consume, is always exact.
#[inline(always)]
fn match_byte(word: u64, b: u8) -> u64 {
    let x = word ^ ONES.wrapping_mul(u64::from(b));
    x.wrapping_sub(ONES) & !x & HIGHS
}

/// ASCII lanes strictly below `n` (`n ≤ 0x80`), marked in their high bit.
/// Same exactness caveat-and-guarantee as [`match_byte`]; lanes with the
/// high bit already set (non-ASCII) are never marked — callers OR in
/// `word & HIGHS` when those matter.
#[inline(always)]
fn match_lt(word: u64, n: u8) -> u64 {
    word.wrapping_sub(ONES.wrapping_mul(u64::from(n))) & !word & HIGHS
}

/// Byte index of the lowest marked lane.
#[inline(always)]
fn first_mark(mask: u64) -> usize {
    (mask.trailing_zeros() >> 3) as usize
}

#[inline(always)]
fn load_word(data: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(data[i..i + 8].try_into().expect("8-byte load"))
}

// --------------------------------------------------------------------------
// Sweep backend selection (SWAR default, wide kernels behind `simd`)
// --------------------------------------------------------------------------

/// Which sweep kernel the bulk scanner uses to classify window bytes. The
/// backends are observationally identical — `tests/sax_scan.rs` holds them
/// to token-for-token, error-for-error equivalence — and differ only in
/// throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanBackend {
    /// Portable 8-byte SWAR word sweeps: the default, and the only backend
    /// compiled without the `simd` cargo feature.
    Swar,
    /// 64-byte AVX2 block classification (`x86_64`, runtime-detected).
    Avx2,
    /// 64-byte NEON block classification (`aarch64`, baseline ISA).
    Neon,
}

/// The backend the next window fill will use. Without the `simd` feature
/// this is always [`ScanBackend::Swar`]; with it, the CPU is probed once
/// (AVX2 on `x86_64` via `is_x86_feature_detected!`, NEON unconditionally
/// on `aarch64` where it is baseline) and the answer cached. Benches and
/// docs use this to report which path actually ran.
pub fn scan_backend() -> ScanBackend {
    backend::current()
}

/// Forces the sweep backend process-wide — how the benches and the
/// differential tests run SWAR and SIMD side by side in one process.
/// Returns `false` (changing nothing) if the requested backend is not
/// compiled in or not supported by this CPU; [`auto_scan_backend`] returns
/// to runtime detection. Safe at any moment: a lexer mid-stream simply
/// fills its next window with the new backend.
pub fn force_scan_backend(backend: ScanBackend) -> bool {
    backend::force(backend)
}

/// Clears a [`force_scan_backend`] override, back to runtime detection.
pub fn auto_scan_backend() {
    backend::reset()
}

#[cfg(feature = "simd")]
mod backend {
    use super::ScanBackend;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = undecided (probe on first use), else the backend's code below.
    /// Detection is idempotent, so a startup race costs a duplicate probe,
    /// never a wrong answer.
    static STATE: AtomicU8 = AtomicU8::new(0);

    fn code(b: ScanBackend) -> u8 {
        match b {
            ScanBackend::Swar => 1,
            ScanBackend::Avx2 => 2,
            ScanBackend::Neon => 3,
        }
    }

    fn available(b: ScanBackend) -> bool {
        match b {
            ScanBackend::Swar => true,
            #[cfg(target_arch = "x86_64")]
            ScanBackend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            ScanBackend::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    fn detect() -> ScanBackend {
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            return ScanBackend::Avx2;
        }
        #[cfg(target_arch = "aarch64")]
        return ScanBackend::Neon;
        #[allow(unreachable_code)]
        ScanBackend::Swar
    }

    pub(super) fn current() -> ScanBackend {
        match STATE.load(Ordering::Relaxed) {
            1 => ScanBackend::Swar,
            2 => ScanBackend::Avx2,
            3 => ScanBackend::Neon,
            _ => {
                let b = detect();
                STATE.store(code(b), Ordering::Relaxed);
                b
            }
        }
    }

    pub(super) fn force(b: ScanBackend) -> bool {
        if !available(b) {
            return false;
        }
        STATE.store(code(b), Ordering::Relaxed);
        true
    }

    pub(super) fn reset() {
        STATE.store(0, Ordering::Relaxed);
    }
}

#[cfg(not(feature = "simd"))]
mod backend {
    use super::ScanBackend;

    pub(super) fn current() -> ScanBackend {
        ScanBackend::Swar
    }

    pub(super) fn force(b: ScanBackend) -> bool {
        b == ScanBackend::Swar
    }

    pub(super) fn reset() {}
}

/// Wide structural classification — the simdjson stage-1 idea scoped to
/// this scanner. One vector pass over a 64-byte block produces five
/// bitmasks (ASCII whitespace, `<`, `>`, "breaks a simple tag body",
/// non-ASCII) that the block fill loop then consumes with register bit
/// tests — no per-byte loads, no per-token sweep setup. Only
/// *classification* is vectorized: every tokenization decision, and every
/// case the masks flag as complex (directives, attributes, non-ASCII,
/// block/window seams), goes through the same scalar [`step_token`] the
/// SWAR backend uses, which is how the backends stay equivalent by
/// construction.
#[cfg(feature = "simd")]
#[allow(unsafe_code)]
mod simd {
    /// Bytes classified per [`BlockClassifier::classify`] call.
    pub(super) const BLOCK: usize = 64;

    /// One bit per block byte, bit 0 = lowest address.
    #[derive(Clone, Copy, Default)]
    pub(super) struct BlockMasks {
        /// ASCII whitespace (TAB, LF, VT, FF, CR, space) — exactly
        /// [`is_ascii_ws`](super::is_ascii_ws).
        pub ws: u64,
        /// `<`
        pub lt: u64,
        /// `>`
        pub gt: u64,
        /// Bytes that end the *simple tag* fast path: below 0x21, `"`,
        /// `'`, `/`, or non-ASCII — exactly the interest set of
        /// [`find_tag_close`](super::find_tag_close) minus `>`.
        pub bad: u64,
        /// Non-ASCII (bit 7 set).
        pub high: u64,
    }

    /// A vector kernel producing [`BlockMasks`]. Implementations are
    /// zero-sized proofs: a value exists only after the ISA was verified
    /// present (or is baseline), which is what makes their intrinsic use
    /// sound.
    pub(super) trait BlockClassifier: Copy {
        /// Classifies `data[at..at + BLOCK]`; panics if out of bounds.
        fn classify(self, data: &[u8], at: usize) -> BlockMasks;
    }

    /// An append cursor over a `Vec`'s spare capacity: the block fill
    /// loop's spelling of `Vec::push` with the length held in a register
    /// instead of written back per event. Construction reserves room for
    /// `extra` pushes up front, so the per-event step is one store and an
    /// increment — no capacity branch, no length store. Dropping the sink
    /// (normally, on an error return, or on a `break` out of the loop)
    /// publishes the final length, so events pushed before an error stay
    /// visible, exactly like plain `push`.
    pub(super) struct EventSink<'a, T: Copy> {
        vec: &'a mut Vec<T>,
        len: usize,
    }

    impl<'a, T: Copy> EventSink<'a, T> {
        /// `extra` is the hard cap on pushes through this sink (the fill
        /// budget); exceeding it is a debug-checked contract violation.
        pub(super) fn new(vec: &'a mut Vec<T>, extra: usize) -> Self {
            vec.reserve(extra);
            let len = vec.len();
            EventSink { vec, len }
        }

        #[inline(always)]
        pub(super) fn push(&mut self, t: T) {
            debug_assert!(self.len < self.vec.capacity());
            // SAFETY: `new` reserved capacity for every permitted push,
            // the write stays below that capacity (debug-asserted), and
            // `T: Copy` means no drop obligations for `set_len` on Drop.
            unsafe {
                self.vec.as_mut_ptr().add(self.len).write(t);
            }
            self.len += 1;
        }
    }

    impl<T: Copy> Drop for EventSink<'_, T> {
        fn drop(&mut self) {
            // SAFETY: `self.len` only grows past the pushes written above,
            // each below the reserved capacity.
            unsafe {
                self.vec.set_len(self.len);
            }
        }
    }

    /// Length of the longest all-ASCII prefix the wide backend can certify
    /// in whole vectors — the UTF-8 validator's fast-forward. Returns 0 on
    /// the SWAR backend (or within a vector of the first non-ASCII byte),
    /// leaving the word-at-a-time loop to do exactly what it always did.
    pub(super) fn ascii_run(bytes: &[u8]) -> usize {
        #[cfg(target_arch = "x86_64")]
        if let Some(k) = Avx2::active() {
            return k.ascii_run(bytes);
        }
        #[cfg(target_arch = "aarch64")]
        if let Some(k) = Neon::active() {
            return k.ascii_run(bytes);
        }
        let _ = bytes;
        0
    }

    #[cfg(target_arch = "x86_64")]
    pub(super) use x86::Avx2;

    #[cfg(target_arch = "x86_64")]
    mod x86 {
        use super::{BlockClassifier, BlockMasks, BLOCK};
        use core::arch::x86_64::*;

        /// Proof-of-AVX2 token (see [`BlockClassifier`]).
        #[derive(Clone, Copy)]
        pub(in crate::scan) struct Avx2(());

        impl Avx2 {
            /// `Some` iff the selected backend is AVX2 — which
            /// [`force_scan_backend`](crate::scan::force_scan_backend)
            /// only permits on CPUs that have it.
            #[inline]
            pub(in crate::scan) fn active() -> Option<Self> {
                (crate::scan::scan_backend() == crate::scan::ScanBackend::Avx2).then_some(Avx2(()))
            }

            /// See [`super::ascii_run`].
            #[inline]
            pub(in crate::scan) fn ascii_run(self, bytes: &[u8]) -> usize {
                // SAFETY: `self` proves AVX2 is present; all loads stay
                // inside `bytes` by the loop bound.
                unsafe { ascii_run_avx2(bytes) }
            }
        }

        /// 32 bytes per test: the prefix ends inside the first vector with
        /// a set high bit, located by the movemask's trailing zeros.
        #[target_feature(enable = "avx2")]
        unsafe fn ascii_run_avx2(bytes: &[u8]) -> usize {
            let n = bytes.len();
            let mut i = 0;
            while i + 32 <= n {
                let v = _mm256_loadu_si256(bytes.as_ptr().add(i) as *const __m256i);
                let mask = _mm256_movemask_epi8(v) as u32;
                if mask != 0 {
                    return i + mask.trailing_zeros() as usize;
                }
                i += 32;
            }
            i
        }

        impl BlockClassifier for Avx2 {
            #[inline(always)]
            fn classify(self, data: &[u8], at: usize) -> BlockMasks {
                assert!(at + BLOCK <= data.len());
                // SAFETY: the bounds are asserted above, and `self` exists
                // only when AVX2 was detected on this CPU.
                unsafe { classify64(data, at) }
            }
        }

        /// Two 32-byte lanes; each class is one byte-compare (or the
        /// signed-compare union trick) plus a movemask.
        #[target_feature(enable = "avx2")]
        unsafe fn classify64(data: &[u8], at: usize) -> BlockMasks {
            let mut m = BlockMasks::default();
            for half in 0..2usize {
                let v = _mm256_loadu_si256(data.as_ptr().add(at + 32 * half) as *const __m256i);
                // ws: `v == ' '` OR `v - 9 <= 4` (TAB..CR as an unsigned
                // range check via saturating subtract).
                let t = _mm256_sub_epi8(v, _mm256_set1_epi8(9));
                let ctl = _mm256_cmpeq_epi8(
                    _mm256_subs_epu8(t, _mm256_set1_epi8(4)),
                    _mm256_setzero_si256(),
                );
                let ws = _mm256_or_si256(_mm256_cmpeq_epi8(v, _mm256_set1_epi8(b' ' as i8)), ctl);
                // Signed `v < 0x21` marks (unsigned < 0x21) ∪ (>= 0x80) in
                // one compare — the same union the SWAR sweeps build from
                // `match_lt(w, 0x21) | (w & HIGHS)`.
                let sub21 = _mm256_cmpgt_epi8(_mm256_set1_epi8(0x21), v);
                let high = _mm256_cmpgt_epi8(_mm256_setzero_si256(), v);
                let bad = _mm256_or_si256(
                    sub21,
                    _mm256_or_si256(
                        _mm256_or_si256(
                            _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b'"' as i8)),
                            _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b'\'' as i8)),
                        ),
                        _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b'/' as i8)),
                    ),
                );
                let lt = _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b'<' as i8));
                let gt = _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b'>' as i8));
                let shift = 32 * half;
                m.ws |= (_mm256_movemask_epi8(ws) as u32 as u64) << shift;
                m.lt |= (_mm256_movemask_epi8(lt) as u32 as u64) << shift;
                m.gt |= (_mm256_movemask_epi8(gt) as u32 as u64) << shift;
                m.bad |= (_mm256_movemask_epi8(bad) as u32 as u64) << shift;
                m.high |= (_mm256_movemask_epi8(high) as u32 as u64) << shift;
            }
            m
        }
    }

    #[cfg(target_arch = "aarch64")]
    pub(super) use arm::Neon;

    #[cfg(target_arch = "aarch64")]
    mod arm {
        use super::{BlockClassifier, BlockMasks, BLOCK};
        use core::arch::aarch64::*;

        /// Proof-of-NEON token — NEON (ASIMD) is part of the aarch64
        /// baseline, so this is constructible whenever the backend is
        /// selected.
        #[derive(Clone, Copy)]
        pub(in crate::scan) struct Neon(());

        impl Neon {
            #[inline]
            pub(in crate::scan) fn active() -> Option<Self> {
                (crate::scan::scan_backend() == crate::scan::ScanBackend::Neon).then_some(Neon(()))
            }

            /// See [`super::ascii_run`]; 16 bytes per `vmaxvq_u8` test,
            /// stopping short of the vector holding the first high byte
            /// (the word loop finishes it).
            #[inline]
            pub(in crate::scan) fn ascii_run(self, bytes: &[u8]) -> usize {
                let n = bytes.len();
                let mut i = 0;
                // SAFETY: NEON is baseline aarch64; loads stay inside
                // `bytes` by the loop bound.
                unsafe {
                    while i + 16 <= n {
                        let v = vld1q_u8(bytes.as_ptr().add(i));
                        if vmaxvq_u8(v) >= 0x80 {
                            break;
                        }
                        i += 16;
                    }
                }
                i
            }
        }

        impl BlockClassifier for Neon {
            #[inline(always)]
            fn classify(self, data: &[u8], at: usize) -> BlockMasks {
                assert!(at + BLOCK <= data.len());
                // SAFETY: bounds asserted above; NEON is baseline aarch64.
                unsafe { classify64(data, at) }
            }
        }

        /// Builds one 64-bit mask from four 16-lane compare results: AND
        /// each lane with its bit weight, then three pairwise adds fold 64
        /// single-bit bytes into 8 mask bytes (the simdjson-on-arm idiom —
        /// NEON has no movemask).
        #[inline(always)]
        unsafe fn movemask4(m0: uint8x16_t, m1: uint8x16_t, m2: uint8x16_t, m3: uint8x16_t) -> u64 {
            const BITS: [u8; 16] = [1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128];
            let bit = vld1q_u8(BITS.as_ptr());
            let t0 = vpaddq_u8(vandq_u8(m0, bit), vandq_u8(m1, bit));
            let t1 = vpaddq_u8(vandq_u8(m2, bit), vandq_u8(m3, bit));
            let t2 = vpaddq_u8(t0, t1);
            vgetq_lane_u64::<0>(vreinterpretq_u64_u8(vpaddq_u8(t2, t2)))
        }

        /// Four 16-byte lanes per block; same classes as the AVX2 kernel,
        /// with the signed-compare union trick spelled `vcltq_s8`.
        unsafe fn classify64(data: &[u8], at: usize) -> BlockMasks {
            let mut ws = [vdupq_n_u8(0); 4];
            let mut lt = [vdupq_n_u8(0); 4];
            let mut gt = [vdupq_n_u8(0); 4];
            let mut bad = [vdupq_n_u8(0); 4];
            let mut high = [vdupq_n_u8(0); 4];
            for lane in 0..4usize {
                let v = vld1q_u8(data.as_ptr().add(at + 16 * lane));
                let sp = vceqq_u8(v, vdupq_n_u8(b' '));
                let ctl = vcleq_u8(vsubq_u8(v, vdupq_n_u8(9)), vdupq_n_u8(4));
                ws[lane] = vorrq_u8(sp, ctl);
                lt[lane] = vceqq_u8(v, vdupq_n_u8(b'<'));
                gt[lane] = vceqq_u8(v, vdupq_n_u8(b'>'));
                let s = vreinterpretq_s8_u8(v);
                let sub21 = vcltq_s8(s, vdupq_n_s8(0x21));
                high[lane] = vcltq_s8(s, vdupq_n_s8(0));
                bad[lane] = vorrq_u8(
                    sub21,
                    vorrq_u8(
                        vorrq_u8(
                            vceqq_u8(v, vdupq_n_u8(b'"')),
                            vceqq_u8(v, vdupq_n_u8(b'\'')),
                        ),
                        vceqq_u8(v, vdupq_n_u8(b'/')),
                    ),
                );
            }
            BlockMasks {
                ws: movemask4(ws[0], ws[1], ws[2], ws[3]),
                lt: movemask4(lt[0], lt[1], lt[2], lt[3]),
                gt: movemask4(gt[0], gt[1], gt[2], gt[3]),
                bad: movemask4(bad[0], bad[1], bad[2], bad[3]),
                high: movemask4(high[0], high[1], high[2], high[3]),
            }
        }
    }
}

/// Index of the `>` closing the tag whose name (or attribute list) starts
/// at `start` (just past `<`, or past `</`), honoring quoted attribute
/// values; `None` if the window ends first. The `bool` is the *simple tag*
/// verdict: `true` means every byte in `start..gt` is plain ASCII name
/// material — no whitespace or control byte, no `"` `'` `/`, no non-ASCII —
/// so that slice **is** the tag's name, verbatim: no trim, no token split,
/// no self-closing mark. Callers hand non-simple tags to the full
/// classifier; simple ones (the overwhelmingly common `<name>` / `</name>`)
/// go straight to name resolution.
#[inline(always)]
fn find_tag_close(data: &[u8], start: usize) -> Option<(usize, bool)> {
    let n = data.len();
    let mut j = start;
    loop {
        if j + 8 <= n {
            let w = load_word(data, j);
            let m = match_byte(w, b'>')
                | match_lt(w, 0x21)
                | match_byte(w, b'"')
                | match_byte(w, b'\'')
                | match_byte(w, b'/')
                | (w & HIGHS);
            if m == 0 {
                j += 8;
                continue;
            }
            let k = j + first_mark(m);
            if data[k] == b'>' {
                return Some((k, true));
            }
            return find_tag_close_general(data, k).map(|gt| (gt, false));
        }
        while j < n {
            let b = data[j];
            if b == b'>' {
                return Some((j, true));
            }
            if !(0x21..0x80).contains(&b) || matches!(b, b'"' | b'\'' | b'/') {
                return find_tag_close_general(data, j).map(|gt| (gt, false));
            }
            j += 1;
        }
        return None;
    }
}

/// The general arm of [`find_tag_close`]: quote-aware sweep for the closing
/// `>` from `start`, which the caller guarantees is outside any quoted
/// attribute value. Sweeps 8 bytes per step for the structural set
/// `>` `"` `'`, and for the matching close quote inside attribute values.
fn find_tag_close_general(data: &[u8], start: usize) -> Option<usize> {
    let n = data.len();
    let mut j = start;
    loop {
        // First of `>`, `"`, `'` at or after j.
        let hit = loop {
            if j + 8 <= n {
                let w = load_word(data, j);
                let m = match_byte(w, b'>') | match_byte(w, b'"') | match_byte(w, b'\'');
                if m == 0 {
                    j += 8;
                    continue;
                }
                break j + first_mark(m);
            }
            while j < n && !matches!(data[j], b'>' | b'"' | b'\'') {
                j += 1;
            }
            if j == n {
                return None;
            }
            break j;
        };
        let quote = data[hit];
        if quote == b'>' {
            return Some(hit);
        }
        // Quoted attribute value: skip to the matching quote.
        j = hit + 1;
        loop {
            if j + 8 <= n {
                let w = load_word(data, j);
                let m = match_byte(w, quote);
                if m == 0 {
                    j += 8;
                    continue;
                }
                j += first_mark(m);
                break;
            }
            while j < n && data[j] != quote {
                j += 1;
            }
            if j == n {
                return None;
            }
            break;
        }
        j += 1;
    }
}

/// Exclusive end of the text token starting at `start`: the index of the
/// first byte that terminates it (`<` or whitespace, ASCII or Unicode);
/// `None` if the token may continue past the window. Sweeps 8 bytes per
/// step; candidate lanes are `<`, anything below 0x21 (a superset of ASCII
/// whitespace that also catches control characters, re-judged precisely)
/// and any non-ASCII byte (decoded to ask `char::is_whitespace`).
#[inline(always)]
fn find_text_end(data: &[u8], start: usize) -> Option<usize> {
    let n = data.len();
    let mut j = start;
    loop {
        let k = loop {
            if j + 8 <= n {
                let w = load_word(data, j);
                let m = match_lt(w, 0x21) | match_byte(w, b'<') | (w & HIGHS);
                if m == 0 {
                    j += 8;
                    continue;
                }
                break j + first_mark(m);
            }
            while j < n {
                let b = data[j];
                if !(0x21..0x80).contains(&b) || b == b'<' {
                    break;
                }
                j += 1;
            }
            if j == n {
                return None;
            }
            break j;
        };
        let b = data[k];
        if b < 0x80 {
            if b == b'<' || is_ascii_ws(b) {
                return Some(k);
            }
            // A control character: part of the token.
            j = k + 1;
        } else {
            let (c, len) = decode_scalar(&data[k..]);
            if c.is_whitespace() {
                return Some(k);
            }
            j = k + len;
        }
    }
}

/// A reusable window of reader bytes, validated chunk-at-a-time.
///
/// Layout: `buf[start..end]` is unread *validated* data, `buf[end..raw_end]`
/// is a carried multi-byte tail split by the last refill seam (re-validated
/// once its continuation arrives), and `offset_base` is the absolute stream
/// offset of `buf[0]`. A validation failure is *deferred* into `pending`:
/// the window behaves as if the stream ended at the last valid scalar, and
/// the typed error is handed out when the lexer actually reaches it.
#[derive(Debug)]
struct ChunkWindow<R> {
    reader: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    raw_end: usize,
    offset_base: usize,
    eof: bool,
    pending: Option<SaxError>,
}

impl<R: io::Read> ChunkWindow<R> {
    fn new(reader: R) -> Self {
        ChunkWindow {
            reader,
            buf: vec![0; SCAN_CHUNK],
            start: 0,
            end: 0,
            raw_end: 0,
            offset_base: 0,
            eof: false,
            pending: None,
        }
    }

    /// The unread validated bytes.
    #[inline(always)]
    fn data(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Absolute stream offset of `data()[0]`.
    #[inline(always)]
    fn abs_offset(&self) -> usize {
        self.offset_base + self.start
    }

    /// Marks `n` leading bytes of `data()` as consumed.
    #[inline(always)]
    fn consume(&mut self, n: usize) {
        debug_assert!(self.start + n <= self.end);
        self.start += n;
    }

    /// Extends the validated window past its current end: compacts the
    /// consumed prefix, pulls one `read`, validates the new bytes (plus any
    /// carried seam tail) and loops until at least one new whole scalar is
    /// available. `Ok(false)` is clean EOF; a deferred UTF-8 error whose
    /// offset the caller has scanned up to, or an I/O failure, is `Err`.
    ///
    /// Because compaction moves only the *unconsumed* suffix to the front,
    /// positions relative to `data()` survive the refill — a token spanning
    /// any number of seams stays addressable as one contiguous slice, at
    /// the cost of growing the buffer only when a single token outgrows it
    /// (memory proportional to the longest token, as for the char path's
    /// per-token `String`).
    fn grow(&mut self) -> Result<bool, SaxError> {
        loop {
            if let Some(e) = self.pending.take() {
                return Err(e);
            }
            if self.eof {
                return Ok(false);
            }
            if self.start > 0 {
                self.buf.copy_within(self.start..self.raw_end, 0);
                self.offset_base += self.start;
                self.end -= self.start;
                self.raw_end -= self.start;
                self.start = 0;
            }
            if self.raw_end == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, 0);
            }
            match self.reader.read(&mut self.buf[self.raw_end..]) {
                Ok(0) => {
                    self.eof = true;
                    if self.raw_end > self.end {
                        // The stream ends inside a multi-byte sequence.
                        self.pending = Some(SaxError::TruncatedUtf8 {
                            offset: self.offset_base + self.end,
                        });
                    }
                }
                Ok(n) => {
                    self.raw_end += n;
                    let (valid, stop) = validate_utf8(&self.buf[self.end..self.raw_end]);
                    let grew = valid > 0;
                    self.end += valid;
                    if matches!(stop, Utf8Stop::Invalid) {
                        self.pending = Some(SaxError::InvalidUtf8 {
                            offset: self.offset_base + self.end,
                        });
                        // Nothing past the error is ever examined: the
                        // lexer fuses once the error surfaces.
                        self.eof = true;
                    }
                    if grew {
                        return Ok(true);
                    }
                    // No whole scalar completed (a tiny read inside a
                    // multi-byte sequence, or an error right at the seam):
                    // loop to read again or surface the deferral.
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(SaxError::Io(e)),
            }
        }
    }
}

/// The bulk lexer: a [`StructuralScanner`] over a [`ChunkWindow`], feeding
/// run classifications through the shared `LexerCore` event builder. This
/// is the engine inside [`ByteTokenizer`](crate::sax::ByteTokenizer) and
/// [`FrozenByteTokenizer`](crate::sax::FrozenByteTokenizer); it yields the
/// token-for-token identical `Result<TaggedSymbol, SaxError>` stream to
/// [`EventLexer`](crate::sax::EventLexer) over the same bytes.
#[derive(Debug)]
pub(crate) struct BulkLexer<R: io::Read, N: ResolveName> {
    window: ChunkWindow<R>,
    core: LexerCore<N>,
    /// Events lexed ahead by [`Self::fill`] for the per-event [`Iterator`]
    /// view, drained from `ready_pos`.
    ready: Vec<TaggedSymbol>,
    ready_pos: usize,
    /// An error met while lexing ahead: surfaced after `ready` drains, i.e.
    /// in exactly the position the per-event path would have yielded it.
    pending_err: Option<SaxError>,
}

/// How many events the per-event [`Iterator`] view lexes ahead per
/// [`BulkLexer::fill`] call: large enough to amortize the refill, small
/// enough (4 bytes per event) to stay cache-resident.
const ITER_BATCH: usize = 1024;

/// The structural sweep methods of [`BulkLexer`] — named for what they
/// classify. Each method owns one run kind and consumes (or measures) it
/// with a dedicated unrolled byte loop over the validated window.
///
/// This is a marker trait tying the module's public story to the
/// implementation: the lexer's per-run methods are the scanner.
pub(crate) trait StructuralScanner {
    /// Scans past inter-token whitespace; `false` means clean EOF.
    fn skip_whitespace(&mut self) -> Result<bool, SaxError>;
}

/// What one [`step_token`] call did with the window.
enum StepOutcome {
    /// One event (plus possibly a queued self-closing twin) was emitted;
    /// the cursor is now at the contained position.
    Emitted(usize),
    /// The next token cannot be decided inside the window (it may span the
    /// seam, or is a stateful directive): consume up to the contained
    /// position and hand over to the growing slow path.
    Window(usize),
    /// Name resolution failed at the token starting at the contained
    /// position (consume up to there, then surface the error).
    Fail(SaxError, usize),
}

/// One scalar token step of the window fill: skip inter-token whitespace
/// from `pos` (ASCII inline, non-ASCII decoded), then classify and emit the
/// next token if it completes inside `data`, charging `budget` per event.
///
/// This is the *shared* per-token arm of both fill backends:
/// [`BulkLexer::fill_window_swar`] is nothing but a loop of these, and the
/// block-classified fill delegates every case its masks flag as complex to
/// exactly one of these — so the backends agree with each other (and, via
/// `LexerCore`, with the char-level lexer) by construction rather than by
/// parallel maintenance.
#[inline(always)]
fn step_token<N: ResolveName>(
    core: &mut LexerCore<N>,
    data: &[u8],
    base: usize,
    mut pos: usize,
    out: &mut Vec<TaggedSymbol>,
    budget: &mut usize,
) -> StepOutcome {
    let n = data.len();
    // Inter-token whitespace — usually none or one byte.
    while pos < n {
        let b = data[pos];
        if b < 0x80 {
            if !is_ascii_ws(b) {
                break;
            }
            pos += 1;
        } else {
            let (c, len) = decode_scalar(&data[pos..]);
            if !c.is_whitespace() {
                break;
            }
            pos += len;
        }
    }
    if pos == n {
        return StepOutcome::Window(n);
    }
    if data[pos] == b'<' {
        if pos + 1 == n {
            return StepOutcome::Window(pos);
        }
        let lead = data[pos + 1];
        if lead == b'!' || lead == b'?' {
            // Directives are rare and stateful: slow path.
            return StepOutcome::Window(pos);
        }
        // `</name>` and `<name>` with nothing but name material between
        // the brackets skip the classifier entirely: the sweep's simple
        // verdict certifies the slice is the name.
        let body_at = if lead == b'/' { pos + 2 } else { pos + 1 };
        let Some((gt, simple)) = find_tag_close(data, body_at) else {
            return StepOutcome::Window(pos);
        };
        if simple && gt > body_at {
            match core.resolve_bytes(&data[body_at..gt]) {
                Ok(sym) => out.push(if lead == b'/' {
                    TaggedSymbol::Return(sym)
                } else {
                    TaggedSymbol::Call(sym)
                }),
                Err(e) => return StepOutcome::Fail(e, pos),
            }
            *budget -= 1;
        } else {
            let body = if lead == b'/' { pos + 1 } else { body_at };
            match core.tag_event_bytes(&data[body..gt], base + pos) {
                Ok(event) => out.push(event),
                Err(e) => return StepOutcome::Fail(e, pos),
            }
            *budget -= 1;
            // A self-closing tag queued its return; emit it in place.
            if let Some(t) = core.queued.pop_front() {
                out.push(t);
                *budget = budget.saturating_sub(1);
            }
        }
        StepOutcome::Emitted(gt + 1)
    } else {
        let Some(end) = find_text_end(data, pos) else {
            // The token may continue past the window: slow path.
            return StepOutcome::Window(pos);
        };
        match core.resolve_bytes(&data[pos..end]) {
            Ok(sym) => out.push(TaggedSymbol::Internal(sym)),
            Err(e) => return StepOutcome::Fail(e, pos),
        }
        *budget -= 1;
        StepOutcome::Emitted(end)
    }
}

/// Packs a 1..=16-byte name starting at `from` into its exact cache key —
/// the same `(w0, w1)` value `LexerCore`'s byte-loop packer produces, built
/// from two raw word loads and a mask instead. Callers guarantee
/// `from + 16 <= data.len()` (the block fill's fast region does by
/// construction), so the overread-free loads stay in bounds.
#[cfg(feature = "simd")]
#[inline(always)]
fn pack_short(data: &[u8], from: usize, len: usize) -> (u64, u64) {
    debug_assert!((1..=16).contains(&len) && from + 16 <= data.len());
    let w0 = load_word(data, from);
    if len <= 8 {
        // `!0 >> (64 - 8·len)` keeps the low `len` lanes; len = 8 is the
        // identity shift, so no branch for it.
        return (w0 & (!0u64 >> (64 - 8 * len)), 0);
    }
    let w1 = load_word(data, from + 8);
    (w0, w1 & (!0u64 >> (128 - 8 * len)))
}

impl<R: io::Read, N: ResolveName> BulkLexer<R, N> {
    pub(crate) fn new(reader: R, names: N) -> Self {
        BulkLexer {
            window: ChunkWindow::new(reader),
            core: LexerCore::new(names),
            ready: Vec::new(),
            ready_pos: 0,
            pending_err: None,
        }
    }

    /// Ensures at least `pos + 1` unread validated bytes are windowed;
    /// `false` means the stream ends first.
    fn ensure(&mut self, pos: usize) -> Result<bool, SaxError> {
        while self.window.data().len() <= pos {
            if !self.window.grow()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn peek_byte(&mut self) -> Result<Option<u8>, SaxError> {
        if self.ensure(0)? {
            Ok(Some(self.window.data()[0]))
        } else {
            Ok(None)
        }
    }

    /// Lexes events in bulk into `out` until roughly `max` are buffered or
    /// the stream ends — the slice-producing entry behind
    /// `queries::run_streaming_reader` and the per-event iterators.
    ///
    /// The hot loop sweeps the *current* window with a local cursor: no
    /// per-event `Result` plumbing, no window bookkeeping, no method
    /// dispatch — one `consume` per window, not per token. Anything that
    /// cannot be finished inside the window (a token cut by the chunk seam,
    /// a directive, EOF, a deferred UTF-8 error) falls back to the general
    /// per-event path ([`Self::next_event`]), which grows the window and
    /// agrees with the fast loop token-for-token by sharing `LexerCore`.
    ///
    /// Events already pushed to `out` stay there when an error is returned
    /// — callers either discard them (the error is the outcome) or, like
    /// the draining iterator, hand them out before surfacing the error,
    /// which is exactly the per-event emission order.
    pub(crate) fn fill(&mut self, out: &mut Vec<TaggedSymbol>, max: usize) -> Result<(), SaxError> {
        // Events the iterator view lexed ahead (and a deferred error) come
        // first, so interleaving `next()` and `fill` stays in order.
        while self.ready_pos < self.ready.len() {
            out.push(self.ready[self.ready_pos]);
            self.ready_pos += 1;
            if out.len() >= max {
                return Ok(());
            }
        }
        if let Some(e) = self.pending_err.take() {
            self.core.failed = true;
            return Err(e);
        }
        if self.core.failed {
            return Ok(());
        }
        loop {
            while let Some(t) = self.core.queued.pop_front() {
                out.push(t);
                if out.len() >= max {
                    return Ok(());
                }
            }
            if out.len() >= max {
                return Ok(());
            }
            if self.fill_window(out, max)? {
                return Ok(());
            }
            // The window could not decide the next token: grow-and-lex it
            // on the general path, then resume sweeping.
            match self.next_event()? {
                Some(t) => out.push(t),
                None => return Ok(()),
            }
        }
    }

    /// The register-resident sweep of [`Self::fill`] over the bytes already
    /// windowed: emits every event that completes inside the window,
    /// consumes exactly the bytes of the events emitted, and returns
    /// `Ok(true)` when `out` reached `max` (`Ok(false)` hands the seam to
    /// the caller's slow path). Tag bodies and text tokens are located with
    /// the word-at-a-time sweeps of [`find_tag_close`] / [`find_text_end`]
    /// (or, on the [`scan_backend`]-selected wide backend, with 64-byte
    /// block masks) and classified byte-level
    /// ([`LexerCore::tag_event_bytes`](crate::sax::LexerCore),
    /// `resolve_bytes`), so the common path touches each input byte once in
    /// a word or vector and never re-walks a token as chars.
    fn fill_window(&mut self, out: &mut Vec<TaggedSymbol>, max: usize) -> Result<bool, SaxError> {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if let Some(kernel) = simd::Avx2::active() {
            return self.fill_window_blocks(kernel, out, max);
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        if let Some(kernel) = simd::Neon::active() {
            return self.fill_window_blocks(kernel, out, max);
        }
        self.fill_window_swar(out, max)
    }

    /// The portable backend of [`Self::fill_window`]: a straight loop of
    /// [`step_token`] word-sweep steps over the window.
    fn fill_window_swar(
        &mut self,
        out: &mut Vec<TaggedSymbol>,
        max: usize,
    ) -> Result<bool, SaxError> {
        let base = self.window.abs_offset();
        let data: &[u8] = &self.window.buf[self.window.start..self.window.end];
        let mut pos = 0usize;
        // Counted down instead of re-reading `out.len()` every event.
        let mut budget = max.saturating_sub(out.len());
        let full = loop {
            if budget == 0 {
                break true;
            }
            match step_token(&mut self.core, data, base, pos, out, &mut budget) {
                StepOutcome::Emitted(next) => pos = next,
                StepOutcome::Window(consumed) => {
                    pos = consumed;
                    break false;
                }
                StepOutcome::Fail(e, at) => {
                    self.window.consume(at);
                    return Err(e);
                }
            }
        };
        self.window.consume(pos);
        Ok(full)
    }

    /// The wide backend of [`Self::fill_window`]: classifies the window in
    /// 64-byte blocks ([`simd::BlockClassifier`]) and consumes the common
    /// tokens — ASCII whitespace, simple tags, plain text runs — with
    /// register bit tests over the block masks, several tokens per
    /// classification. Anything else (directives, attribute-laden tags,
    /// non-ASCII bytes, tokens leaving the fast region, the window tail)
    /// falls through to exactly one scalar [`step_token`] and the loop
    /// resumes — so every observable decision is either "trivially the
    /// same token the SWAR sweeps find" (simple-body certification comes
    /// from the `bad` mask, the very interest set of [`find_tag_close`])
    /// or literally the same code.
    #[cfg(feature = "simd")]
    fn fill_window_blocks<C: simd::BlockClassifier>(
        &mut self,
        cls: C,
        out: &mut Vec<TaggedSymbol>,
        max: usize,
    ) -> Result<bool, SaxError> {
        use simd::BLOCK;
        let base = self.window.abs_offset();
        let data: &[u8] = &self.window.buf[self.window.start..self.window.end];
        let n = data.len();
        let mut pos = 0usize;
        let mut budget = max.saturating_sub(out.len());
        // The fast region keeps one whole block *and* the 16-byte
        // packed-name loads in bounds; the short window tail (and any
        // window shorter than a block) runs scalar.
        let fast_end = n.saturating_sub(BLOCK + 32);
        // One-sided spelling of `wide && pos <= fast_end`: a window too
        // short for the fast region gets a limit of 0, one comparison per
        // token instead of two.
        let fast_limit = if n >= BLOCK + 32 { fast_end + 1 } else { 0 };
        // Current block base. The sentinel keeps `pos.wrapping_sub(bb)` at
        // `pos + BLOCK + 1 >= BLOCK` for every reachable `pos`, so the first
        // fast-loop iteration always classifies a real block.
        let mut bb = usize::MAX - BLOCK;
        let mut m = simd::BlockMasks::default();
        let full = 'outer: loop {
            if budget == 0 {
                break true;
            }
            // The sink scopes the fast loop: its drop publishes the final
            // length (on every exit, including error returns and the
            // budget break) before the scalar arm touches `out` directly.
            {
                let mut sink = simd::EventSink::new(out, budget);
                while pos < fast_limit {
                    if pos.wrapping_sub(bb) >= BLOCK {
                        bb = pos;
                        m = cls.classify(data, bb);
                    }
                    // Inter-token whitespace, straight off the ws mask.
                    let non_ws = !m.ws & ((!0u64) << (pos - bb));
                    if non_ws == 0 {
                        pos = bb + BLOCK;
                        continue;
                    }
                    let s = bb + non_ws.trailing_zeros() as usize;
                    let rs = s - bb;
                    // The isolated lowest bit doubles as the `s` bit test —
                    // cheaper than a variable shift per class.
                    let sbit = non_ws & non_ws.wrapping_neg();
                    if m.high & sbit != 0 {
                        // Unicode whitespace or a multi-byte token: scalar.
                        pos = s;
                        break;
                    }
                    if m.lt & sbit != 0 {
                        // A tag. (`s + 1 < n` because `s <= fast_end`.)
                        let lead = data[s + 1];
                        if lead == b'!' || lead == b'?' {
                            pos = s;
                            break; // directive: stateful slow path
                        }
                        let from = if lead == b'/' { s + 2 } else { s + 1 };
                        if from >= bb + BLOCK {
                            bb = s;
                            m = cls.classify(data, bb);
                        }
                        let mut stop = (m.gt | m.bad) & ((!0u64) << (from - bb));
                        if stop == 0 {
                            // The body crosses the block: re-anchor on the name.
                            if from > fast_end {
                                pos = s;
                                break;
                            }
                            bb = from;
                            m = cls.classify(data, bb);
                            stop = m.gt | m.bad;
                            if stop == 0 {
                                pos = s;
                                break; // a > 64-byte body: the word sweeps own it
                            }
                        }
                        let close = bb + stop.trailing_zeros() as usize;
                        let cbit = stop & stop.wrapping_neg();
                        if m.bad & cbit != 0 || close == from {
                            pos = s;
                            break; // attributes/quotes/self-closing/`<>`: scalar
                        }
                        let name = &data[from..close];
                        let resolved = if name.len() <= 16 {
                            let (w0, w1) = pack_short(data, from, name.len());
                            self.core.resolve_prepacked(w0, w1, name)
                        } else {
                            self.core.resolve_bytes(name)
                        };
                        match resolved {
                            Ok(sym) => sink.push(if lead == b'/' {
                                TaggedSymbol::Return(sym)
                            } else {
                                TaggedSymbol::Call(sym)
                            }),
                            Err(e) => {
                                self.window.consume(s);
                                return Err(e);
                            }
                        }
                        budget -= 1;
                        pos = close + 1;
                        if budget == 0 {
                            break 'outer true;
                        }
                        continue;
                    }
                    let mut cand = (m.ws | m.lt | m.high) & ((!1u64) << rs);
                    loop {
                        if cand != 0 {
                            break;
                        }
                        let next = bb + BLOCK;
                        if next > fast_end {
                            break; // may outrun the fast region
                        }
                        bb = next;
                        m = cls.classify(data, bb);
                        cand = m.ws | m.lt | m.high;
                    }
                    let cbit = cand & cand.wrapping_neg();
                    if cand == 0 || m.high & cbit != 0 {
                        pos = s;
                        break;
                    }
                    let close = bb + cand.trailing_zeros() as usize;
                    let text = &data[s..close];
                    let resolved = if text.len() <= 16 {
                        let (w0, w1) = pack_short(data, s, text.len());
                        self.core.resolve_prepacked(w0, w1, text)
                    } else {
                        self.core.resolve_bytes(text)
                    };
                    match resolved {
                        Ok(sym) => sink.push(TaggedSymbol::Internal(sym)),
                        Err(e) => {
                            self.window.consume(s);
                            return Err(e);
                        }
                    }
                    budget -= 1;
                    pos = close;
                    if budget == 0 {
                        break 'outer true;
                    }
                }
            }
            // Scalar arm: the window tail, plus whatever the masks flagged.
            match step_token(&mut self.core, data, base, pos, out, &mut budget) {
                StepOutcome::Emitted(next) => pos = next,
                StepOutcome::Window(consumed) => {
                    pos = consumed;
                    break false;
                }
                StepOutcome::Fail(e, at) => {
                    self.window.consume(at);
                    return Err(e);
                }
            }
        };
        self.window.consume(pos);
        Ok(full)
    }

    fn next_event(&mut self) -> Result<Option<TaggedSymbol>, SaxError> {
        loop {
            // Drained inside the loop: a CDATA section queues text tokens
            // that must come out before the next run is scanned.
            if let Some(t) = self.core.queued.pop_front() {
                return Ok(Some(t));
            }
            if !self.skip_whitespace()? {
                return Ok(None);
            }
            if self.window.data()[0] == b'<' {
                if let Some(t) = self.lex_tag()? {
                    return Ok(Some(t));
                }
                // directive skipped
            } else {
                return self.lex_text().map(Some);
            }
        }
    }

    /// Lexes one whitespace-delimited text token, with the window cursor on
    /// its first byte: one sweep to the next `<` or whitespace, then a
    /// single name resolution over the whole slice.
    fn lex_text(&mut self) -> Result<TaggedSymbol, SaxError> {
        let mut pos = 0usize;
        loop {
            let data = self.window.data();
            let n = data.len();
            let mut stop = false;
            while pos < n {
                let b = data[pos];
                if b < 0x80 {
                    if b == b'<' || is_ascii_ws(b) {
                        stop = true;
                        break;
                    }
                    pos += 1;
                    continue;
                }
                let (c, len) = decode_scalar(&data[pos..]);
                if c.is_whitespace() {
                    stop = true;
                    break;
                }
                pos += len;
            }
            if stop {
                break;
            }
            if !self.window.grow()? {
                break; // EOF ends the token
            }
        }
        let token = std::str::from_utf8(&self.window.data()[..pos])
            .expect("the window holds validated UTF-8");
        let sym = self.core.resolve(token)?;
        self.window.consume(pos);
        Ok(TaggedSymbol::Internal(sym))
    }

    /// Lexes one `<…>` construct, with the window cursor on `<`. Returns
    /// `None` for skipped directives. The closing `>` is found by a
    /// quote-aware byte sweep (a `>` inside a quoted attribute value does
    /// not terminate the tag); the body between the brackets is then handed
    /// whole to the shared tag classifier.
    fn lex_tag(&mut self) -> Result<Option<TaggedSymbol>, SaxError> {
        let tag_start = self.window.abs_offset();
        if self.ensure(1)? {
            let b = self.window.data()[1];
            if b == b'!' || b == b'?' {
                // <!DOCTYPE …>, <!-- … -->, <?xml … ?>: no SAX event.
                self.window.consume(2); // the '<' and the lead byte
                self.lex_directive(tag_start, b)?;
                return Ok(None);
            }
        }
        let mut pos = 1usize;
        let mut quote = 0u8;
        'scan: loop {
            let data = self.window.data();
            let n = data.len();
            while pos < n {
                let b = data[pos];
                pos += 1;
                if quote != 0 {
                    if b == quote {
                        quote = 0;
                    }
                } else if b == b'>' {
                    break 'scan;
                } else if b == b'"' || b == b'\'' {
                    quote = b;
                }
            }
            if !self.window.grow()? {
                return Err(SaxError::Syntax(NestedWordError::Parse {
                    offset: tag_start,
                    message: "unterminated tag".into(),
                }));
            }
        }
        let body = std::str::from_utf8(&self.window.data()[1..pos - 1])
            .expect("the window holds validated UTF-8");
        let event = self.core.tag_event(body, tag_start)?;
        self.window.consume(pos);
        Ok(Some(event))
    }

    /// Skips or lexes one directive, with the window cursor just past the
    /// consumed `<!` or `<?` (`lead` is the second byte). Mirrors
    /// [`EventLexer::lex_directive`](crate::sax::EventLexer) exactly,
    /// including the quirky corners: `<!-` with no second dash falls
    /// through to the bracket scan, and a partial `CDATA[` marker leaves
    /// the consumed `[` as one open bracket level.
    fn lex_directive(&mut self, tag_start: usize, lead: u8) -> Result<(), SaxError> {
        if lead == b'!' && self.peek_byte()? == Some(b'-') {
            self.window.consume(1);
            if self.peek_byte()? == Some(b'-') {
                self.window.consume(1);
                return self.scan_comment(tag_start);
            }
            // "<!-…" without a second dash: fall through to the '>' scan
        }
        if lead == b'?' {
            return self.scan_pi(tag_start);
        }
        let mut depth = 0usize;
        if lead == b'!' && self.peek_byte()? == Some(b'[') {
            self.window.consume(1);
            // `<![`: a CDATA section if the marker `CDATA[` follows.
            const MARKER: &[u8; 6] = b"CDATA[";
            let mut matched = 0usize;
            while matched < MARKER.len() && self.peek_byte()? == Some(MARKER[matched]) {
                self.window.consume(1);
                matched += 1;
            }
            if matched == MARKER.len() {
                return self.lex_cdata(tag_start);
            }
            // Not CDATA (e.g. a DTD conditional section): the consumed `[`
            // opened one bracket level; fall through to the scan.
            depth = 1;
        }
        self.scan_doctype(tag_start, depth)
    }

    fn unterminated_directive(tag_start: usize) -> SaxError {
        SaxError::Syntax(NestedWordError::Parse {
            offset: tag_start,
            message: "unterminated directive".into(),
        })
    }

    /// Sweeps a comment body to its `-->` terminator, consuming as it goes
    /// — only a trailing-dash count crosses chunk seams, so a comment of
    /// any length never grows the window.
    fn scan_comment(&mut self, tag_start: usize) -> Result<(), SaxError> {
        let mut dashes = 0usize;
        loop {
            let data = self.window.data();
            let n = data.len();
            let mut i = 0;
            while i < n {
                let b = data[i];
                i += 1;
                match b {
                    b'-' => dashes += 1,
                    b'>' if dashes >= 2 => {
                        self.window.consume(i);
                        return Ok(());
                    }
                    _ => dashes = 0,
                }
            }
            self.window.consume(i);
            if !self.window.grow()? {
                return Err(Self::unterminated_directive(tag_start));
            }
        }
    }

    /// Sweeps a processing instruction to its `?>` terminator; only the
    /// previous-byte-was-`?` flag crosses seams.
    fn scan_pi(&mut self, tag_start: usize) -> Result<(), SaxError> {
        let mut prev_question = false;
        loop {
            let data = self.window.data();
            let n = data.len();
            let mut i = 0;
            while i < n {
                let b = data[i];
                i += 1;
                if b == b'>' && prev_question {
                    self.window.consume(i);
                    return Ok(());
                }
                prev_question = b == b'?';
            }
            self.window.consume(i);
            if !self.window.grow()? {
                return Err(Self::unterminated_directive(tag_start));
            }
        }
    }

    /// Sweeps a declaration to the first `>` outside a `[ … ]` internal
    /// subset (DOCTYPEs with entity declarations inside); only the bracket
    /// depth crosses seams.
    fn scan_doctype(&mut self, tag_start: usize, mut depth: usize) -> Result<(), SaxError> {
        loop {
            let data = self.window.data();
            let n = data.len();
            let mut i = 0;
            while i < n {
                let b = data[i];
                i += 1;
                match b {
                    b'[' => depth += 1,
                    b']' => depth = depth.saturating_sub(1),
                    b'>' if depth == 0 => {
                        self.window.consume(i);
                        return Ok(());
                    }
                    _ => {}
                }
            }
            self.window.consume(i);
            if !self.window.grow()? {
                return Err(Self::unterminated_directive(tag_start));
            }
        }
    }

    /// Lexes a CDATA section, with the cursor just past `<![CDATA[`: one
    /// sweep to the `]]>` terminator, then the whole content slice goes to
    /// the shared token splitter. Unlike the other directives the content
    /// is needed whole — its text tokens are all resolved before any is
    /// queued, so a resolution failure surfaces with nothing half-emitted —
    /// so the sweep grows the window instead of consuming.
    fn lex_cdata(&mut self, tag_start: usize) -> Result<(), SaxError> {
        let mut pos = 0usize;
        let end = 'scan: loop {
            let data = self.window.data();
            let n = data.len();
            while pos < n {
                if data[pos] == b'>' && pos >= 2 && data[pos - 1] == b']' && data[pos - 2] == b']' {
                    break 'scan pos - 2;
                }
                pos += 1;
            }
            if !self.window.grow()? {
                return Err(SaxError::Syntax(NestedWordError::Parse {
                    offset: tag_start,
                    message: "unterminated CDATA section".into(),
                }));
            }
        };
        let content = std::str::from_utf8(&self.window.data()[..end])
            .expect("the window holds validated UTF-8");
        self.core.cdata_tokens(content)?;
        self.window.consume(end + 3);
        Ok(())
    }
}

impl<R: io::Read, N: ResolveName> StructuralScanner for BulkLexer<R, N> {
    fn skip_whitespace(&mut self) -> Result<bool, SaxError> {
        loop {
            let data = self.window.data();
            let n = data.len();
            let mut i = 0;
            let mut stop = false;
            while i < n {
                let b = data[i];
                if b < 0x80 {
                    if is_ascii_ws(b) {
                        i += 1;
                        continue;
                    }
                    stop = true;
                    break;
                }
                let (c, len) = decode_scalar(&data[i..]);
                if c.is_whitespace() {
                    i += len;
                    continue;
                }
                stop = true;
                break;
            }
            self.window.consume(i);
            if stop {
                return Ok(true);
            }
            if !self.window.grow()? {
                return Ok(false);
            }
        }
    }
}

impl<R: io::Read, N: ResolveName> Iterator for BulkLexer<R, N> {
    type Item = Result<TaggedSymbol, SaxError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.ready_pos < self.ready.len() {
                let t = self.ready[self.ready_pos];
                self.ready_pos += 1;
                return Some(Ok(t));
            }
            if let Some(e) = self.pending_err.take() {
                self.core.failed = true;
                return Some(Err(e));
            }
            if self.core.failed {
                return None;
            }
            // Lex the next batch ahead; events met before an error drain
            // first, preserving the per-event emission order.
            self.ready.clear();
            self.ready_pos = 0;
            let mut batch = std::mem::take(&mut self.ready);
            let outcome = self.fill(&mut batch, ITER_BATCH);
            self.ready = batch;
            match outcome {
                Ok(()) if self.ready.is_empty() => return None,
                Ok(()) => {}
                Err(e) => self.pending_err = Some(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_matches_std_on_valid_prefixes() {
        let text = "A£ह𐍈\u{10FFFF}\u{D7FF}\u{E000}ß\u{7F}\u{80} plain ascii run!";
        let bytes = text.as_bytes();
        // Every prefix of valid UTF-8 validates to its longest whole-scalar
        // prefix, never flagging an error.
        for cut in 0..=bytes.len() {
            let (valid, stop) = validate_utf8(&bytes[..cut]);
            assert!(std::str::from_utf8(&bytes[..valid]).is_ok(), "cut {cut}");
            match stop {
                Utf8Stop::Invalid => panic!("valid prefix flagged invalid at cut {cut}"),
                Utf8Stop::Clean => assert_eq!(valid, cut),
                Utf8Stop::Incomplete => assert!(valid < cut),
            }
        }
    }

    #[test]
    fn validator_rejects_what_the_whatwg_table_rejects() {
        let cases: &[&[u8]] = &[
            b"\x80",             // bare continuation byte
            b"\xFF",             // invalid leading byte
            b"\xC3\x28",         // bad continuation
            b"\xC0\xAF",         // overlong '/'
            b"\xE0\x80\xAF",     // overlong 3-byte
            b"\xED\xA0\x80",     // surrogate half
            b"\xF4\x90\x80\x80", // scalar above U+10FFFF
        ];
        for &bad in cases {
            let mut input = b"ok ".to_vec();
            input.extend_from_slice(bad);
            let (valid, stop) = validate_utf8(&input);
            assert_eq!(valid, 3, "input {input:?}");
            assert!(matches!(stop, Utf8Stop::Invalid), "input {input:?}");
        }
    }

    #[test]
    fn validator_ascii_fast_path_spans_word_boundaries() {
        // 8-byte-aligned and unaligned ASCII runs around a multi-byte char.
        let text = "0123456789abcdef€0123456789abcdef";
        let (valid, stop) = validate_utf8(text.as_bytes());
        assert_eq!(valid, text.len());
        assert!(matches!(stop, Utf8Stop::Clean));
    }
}
