//! Bulk structural scanning of raw XML-ish bytes — the simdjson-style fast
//! path behind [`ByteTokenizer`](crate::sax::ByteTokenizer) and
//! [`FrozenByteTokenizer`](crate::sax::FrozenByteTokenizer).
//!
//! The char-at-a-time [`EventLexer`](crate::sax::EventLexer) pulls one
//! decoded scalar per step through a peekable adapter — five or six calls
//! and a `String::push` per input byte. That wall dominates the measured
//! bytes-in → verdict-out pipeline: the compiled engines decide hundreds of
//! millions of events per second while the lexer feeds them tens of
//! megabytes. This module moves every per-byte decision to a per-*run*
//! decision, the way continuous-readout pipelines move validation from
//! per-sample to per-chunk:
//!
//! * bytes are pulled through a `ChunkWindow` — a reusable buffer of
//!   [`SCAN_CHUNK`] bytes refilled from the reader and **UTF-8-validated a
//!   chunk at a time** (an 8-byte-word ASCII fast path, the WHATWG table
//!   only on non-ASCII runs), with a multi-byte sequence split across a
//!   refill seam carried over and re-validated when its tail arrives;
//! * the `StructuralScanner` methods of the internal `BulkLexer` then sweep whole
//!   *runs* of the validated window with unrolled byte loops keyed on the
//!   structural set — `<`, `>`, `&` quotes inside tags, the `-->` / `?>` /
//!   `]]>` terminators — classifying text, tag bodies, CDATA sections,
//!   comments, processing instructions and DOCTYPE internal subsets as
//!   slices, not as characters;
//! * names are resolved straight from window slices through the shared
//!   [`ResolveName`] policy and the event-building
//!   `LexerCore` that the char-level lexer also uses, so the two paths are
//!   token-for-token and error-for-error equivalent (property-tested in
//!   `tests/sax_scan.rs` under adversarial read granularities).
//!
//! Invalid or truncated UTF-8 found by the chunk validator is *deferred*:
//! the window simply ends at the last valid scalar, and the typed
//! [`SaxError`] surfaces exactly when lexing reaches that offset — the same
//! observable order as the incremental decoder, where a token in progress
//! when the bad byte arrives is discarded in favor of the error.

use crate::sax::{LexerCore, ResolveName, SaxError};
use nested_words::{NestedWordError, TaggedSymbol};
use std::io;

/// Default size, in bytes, of the bulk scanning window: the unit reads are
/// requested in, UTF-8 validation runs over, and structural runs are swept
/// from. Shared by [`ByteTokenizer`](crate::sax::ByteTokenizer) /
/// [`FrozenByteTokenizer`](crate::sax::FrozenByteTokenizer) (hence by
/// `queries::run_streaming_reader` and `nwa-service`'s `submit_bytes`,
/// which ride them). 64 KiB: comfortably past the point where per-chunk
/// costs (one `read` call, one validation sweep, one compaction memmove)
/// amortize to noise, while staying L2-resident on every current core.
pub const SCAN_CHUNK: usize = 64 * 1024;

/// What ended a chunk validation sweep.
enum Utf8Stop {
    /// The run ends on a scalar boundary.
    Clean,
    /// The run ends inside a multi-byte sequence whose bytes so far are
    /// consistent — a refill seam, not (yet) an error.
    Incomplete,
    /// The sequence starting at the reported prefix length is invalid.
    Invalid,
}

/// Validates one byte run, returning the length of its longest prefix made
/// of whole valid scalars and what stopped the sweep there.
///
/// ASCII is skipped eight bytes per test (`word & 0x8080…` — the memchr
/// idiom for "any high bit set"); only non-ASCII runs consult the WHATWG
/// second-byte table, which rejects overlong forms (C0/C1, E0 80–9F,
/// F0 80–8F), surrogates (ED A0–BF) and scalars past U+10FFFF (F4 90–BF,
/// F5–FF) — byte-for-byte the same acceptance set as the incremental
/// [`Utf8Chars`](crate::sax::Utf8Chars) decoder.
fn validate_utf8(bytes: &[u8]) -> (usize, Utf8Stop) {
    const HIGH_BITS: u64 = 0x8080_8080_8080_8080;
    let n = bytes.len();
    let mut i = 0;
    while i < n {
        let b = bytes[i];
        if b < 0x80 {
            if i + 8 <= n {
                let word = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte run"));
                if word & HIGH_BITS == 0 {
                    i += 8;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        let (len, min1, max1) = match b {
            0xC2..=0xDF => (2, 0x80, 0xBF),
            0xE0 => (3, 0xA0, 0xBF),
            0xE1..=0xEC | 0xEE..=0xEF => (3, 0x80, 0xBF),
            0xED => (3, 0x80, 0x9F),
            0xF0 => (4, 0x90, 0xBF),
            0xF1..=0xF3 => (4, 0x80, 0xBF),
            0xF4 => (4, 0x80, 0x8F),
            _ => return (i, Utf8Stop::Invalid),
        };
        let avail = (n - i).min(len);
        for j in 1..avail {
            let c = bytes[i + j];
            let (lo, hi) = if j == 1 { (min1, max1) } else { (0x80, 0xBF) };
            if c < lo || c > hi {
                return (i, Utf8Stop::Invalid);
            }
        }
        if avail < len {
            return (i, Utf8Stop::Incomplete);
        }
        i += len;
    }
    (n, Utf8Stop::Clean)
}

/// Decodes the (already validated) scalar starting at `bytes[0]`, returning
/// it with its encoded length. Only reached for non-ASCII bytes on the
/// whitespace/terminator checks, so the common path never runs it.
fn decode_scalar(bytes: &[u8]) -> (char, usize) {
    let b0 = bytes[0];
    debug_assert!(b0 >= 0x80, "ASCII is handled inline by the scan loops");
    let len: usize = match b0 {
        0xC2..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    };
    let mut cp = u32::from(b0) & (0x7F >> len);
    for &b in &bytes[1..len] {
        cp = (cp << 6) | (u32::from(b) & 0x3F);
    }
    (
        char::from_u32(cp).expect("the window holds validated UTF-8"),
        len,
    )
}

/// Is this byte one of the six ASCII characters `char::is_whitespace`
/// accepts (TAB, LF, VT, FF, CR, space)? Non-ASCII whitespace (NBSP, the
/// Unicode space block, line/paragraph separators) is caught by decoding,
/// which only triggers on high bytes.
#[inline(always)]
fn is_ascii_ws(b: u8) -> bool {
    b == b' ' || (0x09..=0x0D).contains(&b)
}

// --------------------------------------------------------------------------
// SWAR word sweeps (the memchr idiom, multi-needle)
// --------------------------------------------------------------------------

const ONES: u64 = 0x0101_0101_0101_0101;
const HIGHS: u64 = 0x8080_8080_8080_8080;

/// Lanes equal to `b`, marked in their high bit (the memchr zero-detect
/// trick on `word ^ splat(b)`). Borrow propagation can set spurious marks,
/// but only in lanes *above* a truly matching lane — so the lowest set
/// mark, which is all the sweeps below consume, is always exact.
#[inline(always)]
fn match_byte(word: u64, b: u8) -> u64 {
    let x = word ^ ONES.wrapping_mul(u64::from(b));
    x.wrapping_sub(ONES) & !x & HIGHS
}

/// ASCII lanes strictly below `n` (`n ≤ 0x80`), marked in their high bit.
/// Same exactness caveat-and-guarantee as [`match_byte`]; lanes with the
/// high bit already set (non-ASCII) are never marked — callers OR in
/// `word & HIGHS` when those matter.
#[inline(always)]
fn match_lt(word: u64, n: u8) -> u64 {
    word.wrapping_sub(ONES.wrapping_mul(u64::from(n))) & !word & HIGHS
}

/// Byte index of the lowest marked lane.
#[inline(always)]
fn first_mark(mask: u64) -> usize {
    (mask.trailing_zeros() >> 3) as usize
}

#[inline(always)]
fn load_word(data: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(data[i..i + 8].try_into().expect("8-byte load"))
}

/// Index of the `>` closing the tag whose name (or attribute list) starts
/// at `start` (just past `<`, or past `</`), honoring quoted attribute
/// values; `None` if the window ends first. The `bool` is the *simple tag*
/// verdict: `true` means every byte in `start..gt` is plain ASCII name
/// material — no whitespace or control byte, no `"` `'` `/`, no non-ASCII —
/// so that slice **is** the tag's name, verbatim: no trim, no token split,
/// no self-closing mark. Callers hand non-simple tags to the full
/// classifier; simple ones (the overwhelmingly common `<name>` / `</name>`)
/// go straight to name resolution.
#[inline(always)]
fn find_tag_close(data: &[u8], start: usize) -> Option<(usize, bool)> {
    let n = data.len();
    let mut j = start;
    loop {
        if j + 8 <= n {
            let w = load_word(data, j);
            let m = match_byte(w, b'>')
                | match_lt(w, 0x21)
                | match_byte(w, b'"')
                | match_byte(w, b'\'')
                | match_byte(w, b'/')
                | (w & HIGHS);
            if m == 0 {
                j += 8;
                continue;
            }
            let k = j + first_mark(m);
            if data[k] == b'>' {
                return Some((k, true));
            }
            return find_tag_close_general(data, k).map(|gt| (gt, false));
        }
        while j < n {
            let b = data[j];
            if b == b'>' {
                return Some((j, true));
            }
            if !(0x21..0x80).contains(&b) || matches!(b, b'"' | b'\'' | b'/') {
                return find_tag_close_general(data, j).map(|gt| (gt, false));
            }
            j += 1;
        }
        return None;
    }
}

/// The general arm of [`find_tag_close`]: quote-aware sweep for the closing
/// `>` from `start`, which the caller guarantees is outside any quoted
/// attribute value. Sweeps 8 bytes per step for the structural set
/// `>` `"` `'`, and for the matching close quote inside attribute values.
fn find_tag_close_general(data: &[u8], start: usize) -> Option<usize> {
    let n = data.len();
    let mut j = start;
    loop {
        // First of `>`, `"`, `'` at or after j.
        let hit = loop {
            if j + 8 <= n {
                let w = load_word(data, j);
                let m = match_byte(w, b'>') | match_byte(w, b'"') | match_byte(w, b'\'');
                if m == 0 {
                    j += 8;
                    continue;
                }
                break j + first_mark(m);
            }
            while j < n && !matches!(data[j], b'>' | b'"' | b'\'') {
                j += 1;
            }
            if j == n {
                return None;
            }
            break j;
        };
        let quote = data[hit];
        if quote == b'>' {
            return Some(hit);
        }
        // Quoted attribute value: skip to the matching quote.
        j = hit + 1;
        loop {
            if j + 8 <= n {
                let w = load_word(data, j);
                let m = match_byte(w, quote);
                if m == 0 {
                    j += 8;
                    continue;
                }
                j += first_mark(m);
                break;
            }
            while j < n && data[j] != quote {
                j += 1;
            }
            if j == n {
                return None;
            }
            break;
        }
        j += 1;
    }
}

/// Exclusive end of the text token starting at `start`: the index of the
/// first byte that terminates it (`<` or whitespace, ASCII or Unicode);
/// `None` if the token may continue past the window. Sweeps 8 bytes per
/// step; candidate lanes are `<`, anything below 0x21 (a superset of ASCII
/// whitespace that also catches control characters, re-judged precisely)
/// and any non-ASCII byte (decoded to ask `char::is_whitespace`).
#[inline(always)]
fn find_text_end(data: &[u8], start: usize) -> Option<usize> {
    let n = data.len();
    let mut j = start;
    loop {
        let k = loop {
            if j + 8 <= n {
                let w = load_word(data, j);
                let m = match_lt(w, 0x21) | match_byte(w, b'<') | (w & HIGHS);
                if m == 0 {
                    j += 8;
                    continue;
                }
                break j + first_mark(m);
            }
            while j < n {
                let b = data[j];
                if !(0x21..0x80).contains(&b) || b == b'<' {
                    break;
                }
                j += 1;
            }
            if j == n {
                return None;
            }
            break j;
        };
        let b = data[k];
        if b < 0x80 {
            if b == b'<' || is_ascii_ws(b) {
                return Some(k);
            }
            // A control character: part of the token.
            j = k + 1;
        } else {
            let (c, len) = decode_scalar(&data[k..]);
            if c.is_whitespace() {
                return Some(k);
            }
            j = k + len;
        }
    }
}

/// A reusable window of reader bytes, validated chunk-at-a-time.
///
/// Layout: `buf[start..end]` is unread *validated* data, `buf[end..raw_end]`
/// is a carried multi-byte tail split by the last refill seam (re-validated
/// once its continuation arrives), and `offset_base` is the absolute stream
/// offset of `buf[0]`. A validation failure is *deferred* into `pending`:
/// the window behaves as if the stream ended at the last valid scalar, and
/// the typed error is handed out when the lexer actually reaches it.
#[derive(Debug)]
struct ChunkWindow<R> {
    reader: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    raw_end: usize,
    offset_base: usize,
    eof: bool,
    pending: Option<SaxError>,
}

impl<R: io::Read> ChunkWindow<R> {
    fn new(reader: R) -> Self {
        ChunkWindow {
            reader,
            buf: vec![0; SCAN_CHUNK],
            start: 0,
            end: 0,
            raw_end: 0,
            offset_base: 0,
            eof: false,
            pending: None,
        }
    }

    /// The unread validated bytes.
    #[inline(always)]
    fn data(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Absolute stream offset of `data()[0]`.
    #[inline(always)]
    fn abs_offset(&self) -> usize {
        self.offset_base + self.start
    }

    /// Marks `n` leading bytes of `data()` as consumed.
    #[inline(always)]
    fn consume(&mut self, n: usize) {
        debug_assert!(self.start + n <= self.end);
        self.start += n;
    }

    /// Extends the validated window past its current end: compacts the
    /// consumed prefix, pulls one `read`, validates the new bytes (plus any
    /// carried seam tail) and loops until at least one new whole scalar is
    /// available. `Ok(false)` is clean EOF; a deferred UTF-8 error whose
    /// offset the caller has scanned up to, or an I/O failure, is `Err`.
    ///
    /// Because compaction moves only the *unconsumed* suffix to the front,
    /// positions relative to `data()` survive the refill — a token spanning
    /// any number of seams stays addressable as one contiguous slice, at
    /// the cost of growing the buffer only when a single token outgrows it
    /// (memory proportional to the longest token, as for the char path's
    /// per-token `String`).
    fn grow(&mut self) -> Result<bool, SaxError> {
        loop {
            if let Some(e) = self.pending.take() {
                return Err(e);
            }
            if self.eof {
                return Ok(false);
            }
            if self.start > 0 {
                self.buf.copy_within(self.start..self.raw_end, 0);
                self.offset_base += self.start;
                self.end -= self.start;
                self.raw_end -= self.start;
                self.start = 0;
            }
            if self.raw_end == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, 0);
            }
            match self.reader.read(&mut self.buf[self.raw_end..]) {
                Ok(0) => {
                    self.eof = true;
                    if self.raw_end > self.end {
                        // The stream ends inside a multi-byte sequence.
                        self.pending = Some(SaxError::TruncatedUtf8 {
                            offset: self.offset_base + self.end,
                        });
                    }
                }
                Ok(n) => {
                    self.raw_end += n;
                    let (valid, stop) = validate_utf8(&self.buf[self.end..self.raw_end]);
                    let grew = valid > 0;
                    self.end += valid;
                    if matches!(stop, Utf8Stop::Invalid) {
                        self.pending = Some(SaxError::InvalidUtf8 {
                            offset: self.offset_base + self.end,
                        });
                        // Nothing past the error is ever examined: the
                        // lexer fuses once the error surfaces.
                        self.eof = true;
                    }
                    if grew {
                        return Ok(true);
                    }
                    // No whole scalar completed (a tiny read inside a
                    // multi-byte sequence, or an error right at the seam):
                    // loop to read again or surface the deferral.
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(SaxError::Io(e)),
            }
        }
    }
}

/// The bulk lexer: a [`StructuralScanner`] over a [`ChunkWindow`], feeding
/// run classifications through the shared `LexerCore` event builder. This
/// is the engine inside [`ByteTokenizer`](crate::sax::ByteTokenizer) and
/// [`FrozenByteTokenizer`](crate::sax::FrozenByteTokenizer); it yields the
/// token-for-token identical `Result<TaggedSymbol, SaxError>` stream to
/// [`EventLexer`](crate::sax::EventLexer) over the same bytes.
#[derive(Debug)]
pub(crate) struct BulkLexer<R: io::Read, N: ResolveName> {
    window: ChunkWindow<R>,
    core: LexerCore<N>,
    /// Events lexed ahead by [`Self::fill`] for the per-event [`Iterator`]
    /// view, drained from `ready_pos`.
    ready: Vec<TaggedSymbol>,
    ready_pos: usize,
    /// An error met while lexing ahead: surfaced after `ready` drains, i.e.
    /// in exactly the position the per-event path would have yielded it.
    pending_err: Option<SaxError>,
}

/// How many events the per-event [`Iterator`] view lexes ahead per
/// [`BulkLexer::fill`] call: large enough to amortize the refill, small
/// enough (4 bytes per event) to stay cache-resident.
const ITER_BATCH: usize = 1024;

/// The structural sweep methods of [`BulkLexer`] — named for what they
/// classify. Each method owns one run kind and consumes (or measures) it
/// with a dedicated unrolled byte loop over the validated window.
///
/// This is a marker trait tying the module's public story to the
/// implementation: the lexer's per-run methods are the scanner.
pub(crate) trait StructuralScanner {
    /// Scans past inter-token whitespace; `false` means clean EOF.
    fn skip_whitespace(&mut self) -> Result<bool, SaxError>;
}

impl<R: io::Read, N: ResolveName> BulkLexer<R, N> {
    pub(crate) fn new(reader: R, names: N) -> Self {
        BulkLexer {
            window: ChunkWindow::new(reader),
            core: LexerCore::new(names),
            ready: Vec::new(),
            ready_pos: 0,
            pending_err: None,
        }
    }

    /// Ensures at least `pos + 1` unread validated bytes are windowed;
    /// `false` means the stream ends first.
    fn ensure(&mut self, pos: usize) -> Result<bool, SaxError> {
        while self.window.data().len() <= pos {
            if !self.window.grow()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn peek_byte(&mut self) -> Result<Option<u8>, SaxError> {
        if self.ensure(0)? {
            Ok(Some(self.window.data()[0]))
        } else {
            Ok(None)
        }
    }

    /// Lexes events in bulk into `out` until roughly `max` are buffered or
    /// the stream ends — the slice-producing entry behind
    /// `queries::run_streaming_reader` and the per-event iterators.
    ///
    /// The hot loop sweeps the *current* window with a local cursor: no
    /// per-event `Result` plumbing, no window bookkeeping, no method
    /// dispatch — one `consume` per window, not per token. Anything that
    /// cannot be finished inside the window (a token cut by the chunk seam,
    /// a directive, EOF, a deferred UTF-8 error) falls back to the general
    /// per-event path ([`Self::next_event`]), which grows the window and
    /// agrees with the fast loop token-for-token by sharing `LexerCore`.
    ///
    /// Events already pushed to `out` stay there when an error is returned
    /// — callers either discard them (the error is the outcome) or, like
    /// the draining iterator, hand them out before surfacing the error,
    /// which is exactly the per-event emission order.
    pub(crate) fn fill(&mut self, out: &mut Vec<TaggedSymbol>, max: usize) -> Result<(), SaxError> {
        // Events the iterator view lexed ahead (and a deferred error) come
        // first, so interleaving `next()` and `fill` stays in order.
        while self.ready_pos < self.ready.len() {
            out.push(self.ready[self.ready_pos]);
            self.ready_pos += 1;
            if out.len() >= max {
                return Ok(());
            }
        }
        if let Some(e) = self.pending_err.take() {
            self.core.failed = true;
            return Err(e);
        }
        if self.core.failed {
            return Ok(());
        }
        loop {
            while let Some(t) = self.core.queued.pop_front() {
                out.push(t);
                if out.len() >= max {
                    return Ok(());
                }
            }
            if out.len() >= max {
                return Ok(());
            }
            if self.fill_window(out, max)? {
                return Ok(());
            }
            // The window could not decide the next token: grow-and-lex it
            // on the general path, then resume sweeping.
            match self.next_event()? {
                Some(t) => out.push(t),
                None => return Ok(()),
            }
        }
    }

    /// The register-resident sweep of [`Self::fill`] over the bytes already
    /// windowed: emits every event that completes inside the window,
    /// consumes exactly the bytes of the events emitted, and returns
    /// `Ok(true)` when `out` reached `max` (`Ok(false)` hands the seam to
    /// the caller's slow path). Tag bodies and text tokens are located with
    /// the word-at-a-time sweeps of [`find_tag_close`] / [`find_text_end`]
    /// and classified byte-level
    /// ([`LexerCore::tag_event_bytes`](crate::sax::LexerCore),
    /// `resolve_bytes`), so the common path touches each input byte once in
    /// an 8-byte word and never re-walks a token as chars.
    fn fill_window(&mut self, out: &mut Vec<TaggedSymbol>, max: usize) -> Result<bool, SaxError> {
        let base = self.window.abs_offset();
        let data: &[u8] = &self.window.buf[self.window.start..self.window.end];
        let n = data.len();
        let mut pos = 0usize;
        // Counted down instead of re-reading `out.len()` every event.
        let mut budget = max.saturating_sub(out.len());
        let full = loop {
            if budget == 0 {
                break true;
            }
            // Inter-token whitespace — usually none or one byte (ASCII
            // inline, rare non-ASCII decoded).
            while pos < n {
                let b = data[pos];
                if b < 0x80 {
                    if !is_ascii_ws(b) {
                        break;
                    }
                    pos += 1;
                } else {
                    let (c, len) = decode_scalar(&data[pos..]);
                    if !c.is_whitespace() {
                        break;
                    }
                    pos += len;
                }
            }
            if pos == n {
                break false;
            }
            if data[pos] == b'<' {
                if pos + 1 == n {
                    break false;
                }
                let lead = data[pos + 1];
                if lead == b'!' || lead == b'?' {
                    // Directives are rare and stateful: slow path.
                    break false;
                }
                // `</name>` and `<name>` with nothing but name material
                // between the brackets skip the classifier entirely: the
                // sweep's simple verdict certifies the slice is the name.
                let body_at = if lead == b'/' { pos + 2 } else { pos + 1 };
                let Some((gt, simple)) = find_tag_close(data, body_at) else {
                    break false;
                };
                if simple && gt > body_at {
                    match self.core.resolve_bytes(&data[body_at..gt]) {
                        Ok(sym) => out.push(if lead == b'/' {
                            TaggedSymbol::Return(sym)
                        } else {
                            TaggedSymbol::Call(sym)
                        }),
                        Err(e) => {
                            self.window.consume(pos);
                            return Err(e);
                        }
                    }
                    budget -= 1;
                } else {
                    let body = if lead == b'/' { pos + 1 } else { body_at };
                    match self.core.tag_event_bytes(&data[body..gt], base + pos) {
                        Ok(event) => out.push(event),
                        Err(e) => {
                            self.window.consume(pos);
                            return Err(e);
                        }
                    }
                    budget -= 1;
                    // A self-closing tag queued its return; emit it in place.
                    if let Some(t) = self.core.queued.pop_front() {
                        out.push(t);
                        budget = budget.saturating_sub(1);
                    }
                }
                pos = gt + 1;
            } else {
                let Some(end) = find_text_end(data, pos) else {
                    // The token may continue past the window: slow path.
                    break false;
                };
                match self.core.resolve_bytes(&data[pos..end]) {
                    Ok(sym) => out.push(TaggedSymbol::Internal(sym)),
                    Err(e) => {
                        self.window.consume(pos);
                        return Err(e);
                    }
                }
                budget -= 1;
                pos = end;
            }
        };
        self.window.consume(pos);
        Ok(full)
    }

    fn next_event(&mut self) -> Result<Option<TaggedSymbol>, SaxError> {
        loop {
            // Drained inside the loop: a CDATA section queues text tokens
            // that must come out before the next run is scanned.
            if let Some(t) = self.core.queued.pop_front() {
                return Ok(Some(t));
            }
            if !self.skip_whitespace()? {
                return Ok(None);
            }
            if self.window.data()[0] == b'<' {
                if let Some(t) = self.lex_tag()? {
                    return Ok(Some(t));
                }
                // directive skipped
            } else {
                return self.lex_text().map(Some);
            }
        }
    }

    /// Lexes one whitespace-delimited text token, with the window cursor on
    /// its first byte: one sweep to the next `<` or whitespace, then a
    /// single name resolution over the whole slice.
    fn lex_text(&mut self) -> Result<TaggedSymbol, SaxError> {
        let mut pos = 0usize;
        loop {
            let data = self.window.data();
            let n = data.len();
            let mut stop = false;
            while pos < n {
                let b = data[pos];
                if b < 0x80 {
                    if b == b'<' || is_ascii_ws(b) {
                        stop = true;
                        break;
                    }
                    pos += 1;
                    continue;
                }
                let (c, len) = decode_scalar(&data[pos..]);
                if c.is_whitespace() {
                    stop = true;
                    break;
                }
                pos += len;
            }
            if stop {
                break;
            }
            if !self.window.grow()? {
                break; // EOF ends the token
            }
        }
        let token = std::str::from_utf8(&self.window.data()[..pos])
            .expect("the window holds validated UTF-8");
        let sym = self.core.resolve(token)?;
        self.window.consume(pos);
        Ok(TaggedSymbol::Internal(sym))
    }

    /// Lexes one `<…>` construct, with the window cursor on `<`. Returns
    /// `None` for skipped directives. The closing `>` is found by a
    /// quote-aware byte sweep (a `>` inside a quoted attribute value does
    /// not terminate the tag); the body between the brackets is then handed
    /// whole to the shared tag classifier.
    fn lex_tag(&mut self) -> Result<Option<TaggedSymbol>, SaxError> {
        let tag_start = self.window.abs_offset();
        if self.ensure(1)? {
            let b = self.window.data()[1];
            if b == b'!' || b == b'?' {
                // <!DOCTYPE …>, <!-- … -->, <?xml … ?>: no SAX event.
                self.window.consume(2); // the '<' and the lead byte
                self.lex_directive(tag_start, b)?;
                return Ok(None);
            }
        }
        let mut pos = 1usize;
        let mut quote = 0u8;
        'scan: loop {
            let data = self.window.data();
            let n = data.len();
            while pos < n {
                let b = data[pos];
                pos += 1;
                if quote != 0 {
                    if b == quote {
                        quote = 0;
                    }
                } else if b == b'>' {
                    break 'scan;
                } else if b == b'"' || b == b'\'' {
                    quote = b;
                }
            }
            if !self.window.grow()? {
                return Err(SaxError::Syntax(NestedWordError::Parse {
                    offset: tag_start,
                    message: "unterminated tag".into(),
                }));
            }
        }
        let body = std::str::from_utf8(&self.window.data()[1..pos - 1])
            .expect("the window holds validated UTF-8");
        let event = self.core.tag_event(body, tag_start)?;
        self.window.consume(pos);
        Ok(Some(event))
    }

    /// Skips or lexes one directive, with the window cursor just past the
    /// consumed `<!` or `<?` (`lead` is the second byte). Mirrors
    /// [`EventLexer::lex_directive`](crate::sax::EventLexer) exactly,
    /// including the quirky corners: `<!-` with no second dash falls
    /// through to the bracket scan, and a partial `CDATA[` marker leaves
    /// the consumed `[` as one open bracket level.
    fn lex_directive(&mut self, tag_start: usize, lead: u8) -> Result<(), SaxError> {
        if lead == b'!' && self.peek_byte()? == Some(b'-') {
            self.window.consume(1);
            if self.peek_byte()? == Some(b'-') {
                self.window.consume(1);
                return self.scan_comment(tag_start);
            }
            // "<!-…" without a second dash: fall through to the '>' scan
        }
        if lead == b'?' {
            return self.scan_pi(tag_start);
        }
        let mut depth = 0usize;
        if lead == b'!' && self.peek_byte()? == Some(b'[') {
            self.window.consume(1);
            // `<![`: a CDATA section if the marker `CDATA[` follows.
            const MARKER: &[u8; 6] = b"CDATA[";
            let mut matched = 0usize;
            while matched < MARKER.len() && self.peek_byte()? == Some(MARKER[matched]) {
                self.window.consume(1);
                matched += 1;
            }
            if matched == MARKER.len() {
                return self.lex_cdata(tag_start);
            }
            // Not CDATA (e.g. a DTD conditional section): the consumed `[`
            // opened one bracket level; fall through to the scan.
            depth = 1;
        }
        self.scan_doctype(tag_start, depth)
    }

    fn unterminated_directive(tag_start: usize) -> SaxError {
        SaxError::Syntax(NestedWordError::Parse {
            offset: tag_start,
            message: "unterminated directive".into(),
        })
    }

    /// Sweeps a comment body to its `-->` terminator, consuming as it goes
    /// — only a trailing-dash count crosses chunk seams, so a comment of
    /// any length never grows the window.
    fn scan_comment(&mut self, tag_start: usize) -> Result<(), SaxError> {
        let mut dashes = 0usize;
        loop {
            let data = self.window.data();
            let n = data.len();
            let mut i = 0;
            while i < n {
                let b = data[i];
                i += 1;
                match b {
                    b'-' => dashes += 1,
                    b'>' if dashes >= 2 => {
                        self.window.consume(i);
                        return Ok(());
                    }
                    _ => dashes = 0,
                }
            }
            self.window.consume(i);
            if !self.window.grow()? {
                return Err(Self::unterminated_directive(tag_start));
            }
        }
    }

    /// Sweeps a processing instruction to its `?>` terminator; only the
    /// previous-byte-was-`?` flag crosses seams.
    fn scan_pi(&mut self, tag_start: usize) -> Result<(), SaxError> {
        let mut prev_question = false;
        loop {
            let data = self.window.data();
            let n = data.len();
            let mut i = 0;
            while i < n {
                let b = data[i];
                i += 1;
                if b == b'>' && prev_question {
                    self.window.consume(i);
                    return Ok(());
                }
                prev_question = b == b'?';
            }
            self.window.consume(i);
            if !self.window.grow()? {
                return Err(Self::unterminated_directive(tag_start));
            }
        }
    }

    /// Sweeps a declaration to the first `>` outside a `[ … ]` internal
    /// subset (DOCTYPEs with entity declarations inside); only the bracket
    /// depth crosses seams.
    fn scan_doctype(&mut self, tag_start: usize, mut depth: usize) -> Result<(), SaxError> {
        loop {
            let data = self.window.data();
            let n = data.len();
            let mut i = 0;
            while i < n {
                let b = data[i];
                i += 1;
                match b {
                    b'[' => depth += 1,
                    b']' => depth = depth.saturating_sub(1),
                    b'>' if depth == 0 => {
                        self.window.consume(i);
                        return Ok(());
                    }
                    _ => {}
                }
            }
            self.window.consume(i);
            if !self.window.grow()? {
                return Err(Self::unterminated_directive(tag_start));
            }
        }
    }

    /// Lexes a CDATA section, with the cursor just past `<![CDATA[`: one
    /// sweep to the `]]>` terminator, then the whole content slice goes to
    /// the shared token splitter. Unlike the other directives the content
    /// is needed whole — its text tokens are all resolved before any is
    /// queued, so a resolution failure surfaces with nothing half-emitted —
    /// so the sweep grows the window instead of consuming.
    fn lex_cdata(&mut self, tag_start: usize) -> Result<(), SaxError> {
        let mut pos = 0usize;
        let end = 'scan: loop {
            let data = self.window.data();
            let n = data.len();
            while pos < n {
                if data[pos] == b'>' && pos >= 2 && data[pos - 1] == b']' && data[pos - 2] == b']' {
                    break 'scan pos - 2;
                }
                pos += 1;
            }
            if !self.window.grow()? {
                return Err(SaxError::Syntax(NestedWordError::Parse {
                    offset: tag_start,
                    message: "unterminated CDATA section".into(),
                }));
            }
        };
        let content = std::str::from_utf8(&self.window.data()[..end])
            .expect("the window holds validated UTF-8");
        self.core.cdata_tokens(content)?;
        self.window.consume(end + 3);
        Ok(())
    }
}

impl<R: io::Read, N: ResolveName> StructuralScanner for BulkLexer<R, N> {
    fn skip_whitespace(&mut self) -> Result<bool, SaxError> {
        loop {
            let data = self.window.data();
            let n = data.len();
            let mut i = 0;
            let mut stop = false;
            while i < n {
                let b = data[i];
                if b < 0x80 {
                    if is_ascii_ws(b) {
                        i += 1;
                        continue;
                    }
                    stop = true;
                    break;
                }
                let (c, len) = decode_scalar(&data[i..]);
                if c.is_whitespace() {
                    i += len;
                    continue;
                }
                stop = true;
                break;
            }
            self.window.consume(i);
            if stop {
                return Ok(true);
            }
            if !self.window.grow()? {
                return Ok(false);
            }
        }
    }
}

impl<R: io::Read, N: ResolveName> Iterator for BulkLexer<R, N> {
    type Item = Result<TaggedSymbol, SaxError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.ready_pos < self.ready.len() {
                let t = self.ready[self.ready_pos];
                self.ready_pos += 1;
                return Some(Ok(t));
            }
            if let Some(e) = self.pending_err.take() {
                self.core.failed = true;
                return Some(Err(e));
            }
            if self.core.failed {
                return None;
            }
            // Lex the next batch ahead; events met before an error drain
            // first, preserving the per-event emission order.
            self.ready.clear();
            self.ready_pos = 0;
            let mut batch = std::mem::take(&mut self.ready);
            let outcome = self.fill(&mut batch, ITER_BATCH);
            self.ready = batch;
            match outcome {
                Ok(()) if self.ready.is_empty() => return None,
                Ok(()) => {}
                Err(e) => self.pending_err = Some(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_matches_std_on_valid_prefixes() {
        let text = "A£ह𐍈\u{10FFFF}\u{D7FF}\u{E000}ß\u{7F}\u{80} plain ascii run!";
        let bytes = text.as_bytes();
        // Every prefix of valid UTF-8 validates to its longest whole-scalar
        // prefix, never flagging an error.
        for cut in 0..=bytes.len() {
            let (valid, stop) = validate_utf8(&bytes[..cut]);
            assert!(std::str::from_utf8(&bytes[..valid]).is_ok(), "cut {cut}");
            match stop {
                Utf8Stop::Invalid => panic!("valid prefix flagged invalid at cut {cut}"),
                Utf8Stop::Clean => assert_eq!(valid, cut),
                Utf8Stop::Incomplete => assert!(valid < cut),
            }
        }
    }

    #[test]
    fn validator_rejects_what_the_whatwg_table_rejects() {
        let cases: &[&[u8]] = &[
            b"\x80",             // bare continuation byte
            b"\xFF",             // invalid leading byte
            b"\xC3\x28",         // bad continuation
            b"\xC0\xAF",         // overlong '/'
            b"\xE0\x80\xAF",     // overlong 3-byte
            b"\xED\xA0\x80",     // surrogate half
            b"\xF4\x90\x80\x80", // scalar above U+10FFFF
        ];
        for &bad in cases {
            let mut input = b"ok ".to_vec();
            input.extend_from_slice(bad);
            let (valid, stop) = validate_utf8(&input);
            assert_eq!(valid, 3, "input {input:?}");
            assert!(matches!(stop, Utf8Stop::Invalid), "input {input:?}");
        }
    }

    #[test]
    fn validator_ascii_fast_path_spans_word_boundaries() {
        // 8-byte-aligned and unaligned ASCII runs around a multi-byte char.
        let text = "0123456789abcdef€0123456789abcdef";
        let (valid, stop) = validate_utf8(text.as_bytes());
        assert_eq!(valid, text.len());
        assert!(matches!(stop, Utf8Stop::Clean));
    }
}
