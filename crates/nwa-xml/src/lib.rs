//! # nwa-xml
//!
//! The document-processing application layer of the reproduction of
//! "Marrying Words and Trees" (PODS 2007). The paper's motivating example is
//! SAX processing of XML: the document is already a linear stream of
//! open-tags, text and close-tags, i.e. a tagged word, and can therefore be
//! interpreted as a nested word *without any preprocessing* (§1).
//!
//! The crate provides
//!
//! * SAX-style tokenizers from a lightweight XML-ish syntax to nested words
//!   ([`sax`]): char-level ([`sax::Tokenizer`]) and byte-level over any
//!   `io::Read` ([`sax::ByteTokenizer`], plus [`sax::FrozenByteTokenizer`]
//!   for lexing against a read-only alphabet pinned by a compiled
//!   automaton), the byte level running on the bulk structural scanner of
//!   [`scan`] (chunked reads, per-chunk UTF-8 validation, whole-run
//!   classification),
//! * a synthetic document generator with controllable size and depth
//!   ([`generate`]),
//! * document queries (patterns in document order, tag containment, depth
//!   bounds) compiled to deterministic nested word automata and evaluated in
//!   a streaming fashion with memory proportional to the document depth
//!   ([`queries`]), including the bytes-in → verdict-out pipeline
//!   ([`queries::run_streaming_reader`]), which buffers scanned events into
//!   slices and feeds the compiled engines' bulk entry points, and its
//!   multi-query counterpart ([`queries::run_multi_streaming_reader`]): one
//!   tokenization pass deciding a whole compiled query set,
//! * a query-combinator layer ([`expr`]): zoo primitives composed with
//!   `and`/`or`/`not` and lowered to one deterministic NWA through the
//!   `automata-core` boolean constructions.

// Without `simd` the crate is unsafe-free, enforced at `forbid` strength.
// The feature's vector kernels need `core::arch` intrinsics, so that build
// steps down to `deny` and the scanner's kernel module carries the one
// scoped `allow(unsafe_code)` (bounds asserted, ISA presence proven by
// construction — see `scan`'s `simd` module).
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod expr;
pub mod generate;
pub mod queries;
pub mod sax;
pub mod scan;
