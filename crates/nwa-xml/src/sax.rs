//! SAX-style tokenization of a lightweight XML syntax into nested words.
//!
//! Supported syntax: `<tag>` (open), `</tag>` (close), `<tag/>` (empty
//! element), and bare text tokens (split on whitespace), e.g.
//! `"<doc><sec>hello world</sec><sec/></doc>"`. Unmatched open and close
//! tags are allowed — they become pending calls and returns, exactly the
//! situation §1 highlights as awkward for tree-based models.

use nested_words::{Alphabet, NestedWord, NestedWordError, TaggedSymbol, TaggedWord};

/// Parses a lightweight XML string into a stream of tagged symbols,
/// interning tag names and text tokens into `alphabet`.
pub fn tokenize(text: &str, alphabet: &mut Alphabet) -> Result<TaggedWord, NestedWordError> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            let end = text[i..]
                .find('>')
                .map(|p| i + p)
                .ok_or(NestedWordError::Parse {
                    offset: i,
                    message: "unterminated tag".into(),
                })?;
            let inner = &text[i + 1..end];
            if let Some(name) = inner.strip_prefix('/') {
                let sym = alphabet.intern(name.trim());
                out.push(TaggedSymbol::Return(sym));
            } else if let Some(name) = inner.strip_suffix('/') {
                let sym = alphabet.intern(name.trim());
                out.push(TaggedSymbol::Call(sym));
                out.push(TaggedSymbol::Return(sym));
            } else {
                let sym = alphabet.intern(inner.trim());
                out.push(TaggedSymbol::Call(sym));
            }
            i = end + 1;
        } else {
            let end = text[i..].find('<').map(|p| i + p).unwrap_or(text.len());
            for token in text[i..end].split_whitespace() {
                let sym = alphabet.intern(token);
                out.push(TaggedSymbol::Internal(sym));
            }
            i = end;
        }
    }
    Ok(out)
}

/// Parses a lightweight XML string directly into a nested word.
pub fn parse_document(text: &str, alphabet: &mut Alphabet) -> Result<NestedWord, NestedWordError> {
    Ok(NestedWord::from_tagged(&tokenize(text, alphabet)?))
}

/// Serializes a nested word back into the lightweight XML syntax.
pub fn to_xml(word: &NestedWord, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    for t in word.to_tagged() {
        let name = alphabet.name(t.symbol()).unwrap_or("?");
        match t {
            TaggedSymbol::Call(_) => {
                out.push('<');
                out.push_str(name);
                out.push('>');
            }
            TaggedSymbol::Return(_) => {
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
            TaggedSymbol::Internal(_) => {
                if !out.is_empty() && !out.ends_with('>') {
                    out.push(' ');
                }
                out.push_str(name);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::tree::is_tree_word;

    #[test]
    fn well_formed_document_roundtrip() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<doc><sec>hello world</sec><sec/></doc>", &mut ab).unwrap();
        assert!(doc.is_rooted());
        assert!(doc.is_well_matched());
        assert_eq!(doc.depth(), 2);
        assert_eq!(
            to_xml(&doc, &ab),
            "<doc><sec>hello world</sec><sec/></doc>".replace("<sec/>", "<sec></sec>")
        );
    }

    #[test]
    fn text_only_document_is_flat() {
        let mut ab = Alphabet::new();
        let doc = parse_document("just some words", &mut ab).unwrap();
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.depth(), 0);
        assert!(doc.is_well_matched());
    }

    #[test]
    fn unmatched_tags_become_pending_edges() {
        let mut ab = Alphabet::new();
        // a document fragment: close without open, open without close (§1's
        // "data that may not parse correctly")
        let doc = parse_document("</a> text <b>", &mut ab).unwrap();
        assert!(!doc.is_well_matched());
        assert!(doc.is_pending_return(0));
        assert!(doc.is_pending_call(2));
    }

    #[test]
    fn element_only_documents_are_tree_words() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<a><b></b><b></b></a>", &mut ab).unwrap();
        assert!(is_tree_word(&doc));
    }

    #[test]
    fn unterminated_tag_is_an_error() {
        let mut ab = Alphabet::new();
        assert!(parse_document("<doc", &mut ab).is_err());
    }
}
