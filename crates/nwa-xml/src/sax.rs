//! SAX-style tokenization of a lightweight XML syntax into nested words.
//!
//! Supported syntax: `<tag>` (open, attributes ignored), `</tag>` (close),
//! `<tag/>` (empty element), `<!…>` / `<?…?>` directives (skipped, including
//! DOCTYPEs with a `[ … ]` internal subset), `<![CDATA[ … ]]>` sections
//! (content lexed as text), and bare
//! text tokens (split on whitespace), e.g.
//! `"<doc><sec n="1">hello world</sec><sec/></doc>"`. Unmatched open and
//! close tags are allowed — they become pending calls and returns, exactly
//! the situation §1 highlights as awkward for tree-based models.
//!
//! The central type is the incremental [`Tokenizer`]: an iterator over
//! `Result<TaggedSymbol, NestedWordError>` that lexes one SAX event at a
//! time from any `Iterator<Item = char>`, without ever materializing a
//! [`TaggedWord`] or [`NestedWord`]. Feeding it straight into
//! `query::run_stream` evaluates a document query in one pass with memory
//! proportional to the nesting depth. [`tokenize`] and [`parse_document`]
//! are the batch conveniences on top.

use nested_words::{Alphabet, NestedWord, NestedWordError, Symbol, TaggedSymbol, TaggedWord};

/// An incremental SAX lexer: yields one [`TaggedSymbol`] event per open tag,
/// close tag, or whitespace-separated text token, interning names into the
/// borrowed alphabet as it goes.
///
/// * Tag names end at the first whitespace character; anything after it
///   (attributes) is ignored, so `<sec a="1">` and `</sec>` produce the
///   *same* symbol.
/// * A `>` inside a single- or double-quoted attribute value does not
///   terminate the tag.
/// * `<!…>` declarations/comments and `<?…?>` processing instructions are
///   skipped entirely; a `<!DOCTYPE …>` may carry a `[ … ]` internal subset
///   whose declarations contain `>`.
/// * `<![CDATA[ … ]]>` sections run to their `]]>` terminator; their
///   content is character data and is lexed as ordinary text tokens, so a
///   `>`, `&` or even `<tag>` inside CDATA is never mistaken for markup.
/// * `<tag/>` (with or without attributes) yields a call immediately
///   followed by a return.
///
/// Errors (`unterminated tag`, `empty tag name`, or a full alphabet via
/// [`Alphabet::try_intern`]) are yielded once, after which the iterator is
/// fused.
#[derive(Debug)]
pub struct Tokenizer<'a, I: Iterator<Item = char>> {
    chars: std::iter::Peekable<I>,
    alphabet: &'a mut Alphabet,
    /// Queued events: the return of a self-closing tag, or the text tokens
    /// of a CDATA section.
    queued: std::collections::VecDeque<TaggedSymbol>,
    /// Byte offset of the next unread character (for error reporting).
    offset: usize,
    /// Set after yielding an error; the iterator is fused.
    failed: bool,
}

impl<'a, I: Iterator<Item = char>> Tokenizer<'a, I> {
    /// Creates a tokenizer over a character stream, interning symbol names
    /// into `alphabet`.
    pub fn new(chars: I, alphabet: &'a mut Alphabet) -> Self {
        Tokenizer {
            chars: chars.peekable(),
            alphabet,
            queued: std::collections::VecDeque::new(),
            offset: 0,
            failed: false,
        }
    }

    /// Consumes the next character, advancing the byte offset.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        self.offset += c.len_utf8();
        Some(c)
    }

    fn intern(&mut self, name: &str) -> Result<Symbol, NestedWordError> {
        self.alphabet.try_intern(name)
    }

    /// Skips or lexes one directive, with the cursor just past `<` and on
    /// `!` or `?`. Comments run to `-->`, processing instructions to `?>`,
    /// CDATA sections to `]]>` (their content is queued as text tokens, see
    /// [`Tokenizer::lex_cdata`]); other declarations (`<!DOCTYPE …>`) run to
    /// the first `>` *outside* a `[ … ]` internal subset, so an entity
    /// declaration's `>` inside the subset does not end the DOCTYPE early.
    /// Attribute-quote rules do not apply inside directives, so an
    /// apostrophe or a bare `>` in a comment does not derail the lexer.
    fn lex_directive(&mut self, tag_start: usize) -> Result<(), NestedWordError> {
        let unterminated = || NestedWordError::Parse {
            offset: tag_start,
            message: "unterminated directive".into(),
        };
        let lead = self.bump().expect("caller peeked '!' or '?'");
        if lead == '!' && self.chars.peek() == Some(&'-') {
            self.bump();
            if self.chars.peek() == Some(&'-') {
                self.bump();
                // comment: scan for the "-->" terminator
                let mut dashes = 0usize;
                loop {
                    match self.bump() {
                        None => return Err(unterminated()),
                        Some('-') => dashes += 1,
                        Some('>') if dashes >= 2 => return Ok(()),
                        Some(_) => dashes = 0,
                    }
                }
            }
            // "<!-…" without a second dash: fall through to the '>' scan
        }
        if lead == '?' {
            // processing instruction: scan for the "?>" terminator
            let mut prev_question = false;
            loop {
                match self.bump() {
                    None => return Err(unterminated()),
                    Some('>') if prev_question => return Ok(()),
                    Some(c) => prev_question = c == '?',
                }
            }
        }
        // `[`…`]` nesting depth of a DOCTYPE internal subset; a `>` only
        // terminates the directive at depth zero.
        let mut depth = 0usize;
        if lead == '!' && self.chars.peek() == Some(&'[') {
            self.bump();
            // `<![`: a CDATA section if the marker `CDATA[` follows.
            const MARKER: [char; 6] = ['C', 'D', 'A', 'T', 'A', '['];
            let mut matched = 0usize;
            while matched < MARKER.len() && self.chars.peek() == Some(&MARKER[matched]) {
                self.bump();
                matched += 1;
            }
            if matched == MARKER.len() {
                return self.lex_cdata(tag_start);
            }
            // Not CDATA (e.g. a DTD conditional section): the consumed `[`
            // opened one bracket level; fall through to the scan.
            depth = 1;
        }
        loop {
            match self.bump() {
                None => return Err(unterminated()),
                Some('[') => depth += 1,
                Some(']') => depth = depth.saturating_sub(1),
                Some('>') if depth == 0 => return Ok(()),
                Some(_) => {}
            }
        }
    }

    /// Lexes a CDATA section, with the cursor just past `<![CDATA[`: scans
    /// to the `]]>` terminator and queues the content as ordinary
    /// whitespace-separated text tokens. Everything inside — `>`, `&`, even
    /// `<tag>` — is character data, never markup; without this the section
    /// used to end at the first `>` and its remainder was re-lexed as tags
    /// and text, silently corrupting the event stream.
    fn lex_cdata(&mut self, tag_start: usize) -> Result<(), NestedWordError> {
        let mut content = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(NestedWordError::Parse {
                        offset: tag_start,
                        message: "unterminated CDATA section".into(),
                    });
                }
                Some(c) => {
                    content.push(c);
                    if content.ends_with("]]>") {
                        content.truncate(content.len() - 3);
                        break;
                    }
                }
            }
        }
        // Intern every token before queuing any, so an alphabet-full error
        // surfaces without half the section already emitted.
        let mut events = Vec::new();
        for token in content.split_whitespace() {
            events.push(TaggedSymbol::Internal(self.intern(token)?));
        }
        self.queued.extend(events);
        Ok(())
    }

    /// Lexes one `<…>` construct, with the cursor on `<`. Returns `None`
    /// for skipped directives.
    fn lex_tag(&mut self) -> Result<Option<TaggedSymbol>, NestedWordError> {
        let tag_start = self.offset;
        self.bump(); // consume '<'
        if matches!(self.chars.peek(), Some('!') | Some('?')) {
            // <!DOCTYPE …>, <!-- … -->, <?xml … ?>: no SAX event.
            self.lex_directive(tag_start)?;
            return Ok(None);
        }
        let mut content = String::new();
        let mut quote: Option<char> = None;
        loop {
            match self.bump() {
                None => {
                    return Err(NestedWordError::Parse {
                        offset: tag_start,
                        message: "unterminated tag".into(),
                    });
                }
                Some(c) => match quote {
                    Some(q) => {
                        if c == q {
                            quote = None;
                        }
                        content.push(c);
                    }
                    None => {
                        if c == '>' {
                            break;
                        }
                        if c == '"' || c == '\'' {
                            quote = Some(c);
                        }
                        content.push(c);
                    }
                },
            }
        }
        let empty_name = || NestedWordError::Parse {
            offset: tag_start,
            message: "empty tag name".into(),
        };
        if let Some(rest) = content.strip_prefix('/') {
            let name = rest.split_whitespace().next().ok_or_else(empty_name)?;
            let sym = self.intern(name)?;
            return Ok(Some(TaggedSymbol::Return(sym)));
        }
        // Both branches read the same trimmed body. (The untrimmed view the
        // non-self-closing branch previously took was harmless — the name is
        // extracted with split_whitespace — but equal inputs by construction
        // beat equal-by-coincidence.)
        let trimmed = content.trim_end();
        let (body, self_closing) = match trimmed.strip_suffix('/') {
            Some(body) => (body, true),
            None => (trimmed, false),
        };
        let name = body.split_whitespace().next().ok_or_else(empty_name)?;
        let sym = self.intern(name)?;
        if self_closing {
            self.queued.push_back(TaggedSymbol::Return(sym));
        }
        Ok(Some(TaggedSymbol::Call(sym)))
    }

    /// Lexes one whitespace-delimited text token, with the cursor on its
    /// first character.
    fn lex_text(&mut self) -> Result<TaggedSymbol, NestedWordError> {
        let mut word = String::new();
        while let Some(&c) = self.chars.peek() {
            if c == '<' || c.is_whitespace() {
                break;
            }
            word.push(c);
            self.bump();
        }
        let sym = self.intern(&word)?;
        Ok(TaggedSymbol::Internal(sym))
    }
}

impl<I: Iterator<Item = char>> Iterator for Tokenizer<'_, I> {
    type Item = Result<TaggedSymbol, NestedWordError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            // Drained inside the loop: a skipped CDATA section queues text
            // tokens that must come out before the next character is lexed.
            if let Some(t) = self.queued.pop_front() {
                return Some(Ok(t));
            }
            let step = match self.chars.peek() {
                None => return None,
                Some('<') => self.lex_tag(),
                Some(c) if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                Some(_) => self.lex_text().map(Some),
            };
            match step {
                Ok(Some(t)) => return Some(Ok(t)),
                Ok(None) => continue, // directive skipped
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Parses a lightweight XML string into a stream of tagged symbols,
/// interning tag names and text tokens into `alphabet` (the batch form of
/// [`Tokenizer`]).
pub fn tokenize(text: &str, alphabet: &mut Alphabet) -> Result<TaggedWord, NestedWordError> {
    Tokenizer::new(text.chars(), alphabet).collect()
}

/// Parses a lightweight XML string directly into a nested word.
pub fn parse_document(text: &str, alphabet: &mut Alphabet) -> Result<NestedWord, NestedWordError> {
    Ok(NestedWord::from_tagged(&tokenize(text, alphabet)?))
}

/// Serializes a nested word back into the lightweight XML syntax.
pub fn to_xml(word: &NestedWord, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    for t in word.to_tagged() {
        let name = alphabet.name(t.symbol()).unwrap_or("?");
        match t {
            TaggedSymbol::Call(_) => {
                out.push('<');
                out.push_str(name);
                out.push('>');
            }
            TaggedSymbol::Return(_) => {
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
            TaggedSymbol::Internal(_) => {
                if !out.is_empty() && !out.ends_with('>') {
                    out.push(' ');
                }
                out.push_str(name);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::tree::is_tree_word;

    #[test]
    fn well_formed_document_roundtrip() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<doc><sec>hello world</sec><sec/></doc>", &mut ab).unwrap();
        assert!(doc.is_rooted());
        assert!(doc.is_well_matched());
        assert_eq!(doc.depth(), 2);
        assert_eq!(
            to_xml(&doc, &ab),
            "<doc><sec>hello world</sec><sec/></doc>".replace("<sec/>", "<sec></sec>")
        );
    }

    #[test]
    fn text_only_document_is_flat() {
        let mut ab = Alphabet::new();
        let doc = parse_document("just some words", &mut ab).unwrap();
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.depth(), 0);
        assert!(doc.is_well_matched());
    }

    #[test]
    fn unmatched_tags_become_pending_edges() {
        let mut ab = Alphabet::new();
        // a document fragment: close without open, open without close (§1's
        // "data that may not parse correctly")
        let doc = parse_document("</a> text <b>", &mut ab).unwrap();
        assert!(!doc.is_well_matched());
        assert!(doc.is_pending_return(0));
        assert!(doc.is_pending_call(2));
    }

    #[test]
    fn element_only_documents_are_tree_words() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<a><b></b><b></b></a>", &mut ab).unwrap();
        assert!(is_tree_word(&doc));
    }

    #[test]
    fn unterminated_tag_is_an_error() {
        let mut ab = Alphabet::new();
        assert!(parse_document("<doc", &mut ab).is_err());
    }

    #[test]
    fn attributes_do_not_change_the_tag_symbol() {
        // Regression: the tag interior used to be interned whole, so
        // `<sec a="1">` and `</sec>` produced different symbols and the
        // element was invisible to tag queries.
        let mut ab = Alphabet::new();
        let events = tokenize(r#"<sec a="1" b='2'>x</sec>"#, &mut ab).unwrap();
        let sec = ab.lookup("sec").unwrap();
        let x = ab.lookup("x").unwrap();
        assert_eq!(
            events,
            vec![
                TaggedSymbol::Call(sec),
                TaggedSymbol::Internal(x),
                TaggedSymbol::Return(sec),
            ]
        );
        assert!(ab.lookup(r#"sec a="1" b='2'"#).is_none());
        let doc = NestedWord::from_tagged(&events);
        assert!(doc.is_rooted());
    }

    #[test]
    fn directives_are_skipped() {
        let mut ab = Alphabet::new();
        let doc = parse_document(
            "<?xml version=\"1.0\"?><!DOCTYPE doc><!-- note --><doc>t</doc>",
            &mut ab,
        )
        .unwrap();
        assert_eq!(doc.len(), 3);
        assert!(doc.is_rooted());
        assert!(ab.lookup("doc").is_some());
        assert!(ab.lookup("?xml").is_none());
    }

    #[test]
    fn hostile_comment_bodies_are_skipped_whole() {
        // An apostrophe must not open quote mode, and a bare '>' must not
        // terminate the comment early.
        let mut ab = Alphabet::new();
        let doc = parse_document("<!-- don't trip --><doc>t</doc>", &mut ab).unwrap();
        assert_eq!(doc.len(), 3);
        assert!(doc.is_rooted());

        let mut ab = Alphabet::new();
        let doc = parse_document("<!-- a>b --><doc>t</doc>", &mut ab).unwrap();
        assert_eq!(doc.len(), 3);
        assert!(ab.lookup("b").is_none());

        // A processing instruction may contain a bare '>'.
        let mut ab = Alphabet::new();
        let doc = parse_document("<?php 1 > 0 ?><doc>t</doc>", &mut ab).unwrap();
        assert_eq!(doc.len(), 3);

        // Unterminated directives are errors, not silent truncation.
        let mut ab = Alphabet::new();
        assert!(parse_document("<!-- never closed >", &mut ab).is_err());
        assert!(parse_document("<?xml version=\"1.0\" >", &mut ab).is_err());
    }

    #[test]
    fn cdata_content_is_text_not_markup() {
        // Regression: the directive scan used to stop at the first `>`, so
        // `<![CDATA[ a > b ]]>` ended after `a ` and re-lexed `b ]]>` (or
        // any markup inside the section) as text and tags.
        let mut ab = Alphabet::new();
        let events = tokenize("<doc><![CDATA[ a > b ]]></doc>", &mut ab).unwrap();
        let doc = ab.lookup("doc").unwrap();
        let a = ab.lookup("a").unwrap();
        let gt = ab.lookup(">").unwrap();
        let b = ab.lookup("b").unwrap();
        assert_eq!(
            events,
            vec![
                TaggedSymbol::Call(doc),
                TaggedSymbol::Internal(a),
                TaggedSymbol::Internal(gt),
                TaggedSymbol::Internal(b),
                TaggedSymbol::Return(doc),
            ]
        );
    }

    #[test]
    fn markup_and_entities_inside_cdata_are_character_data() {
        // `<tag>` inside CDATA must not open an element, and `&` is a plain
        // character (no entity processing).
        let mut ab = Alphabet::new();
        let doc = parse_document("<doc><![CDATA[<tag> & x]]></doc>", &mut ab).unwrap();
        assert!(doc.is_rooted());
        assert_eq!(doc.depth(), 1);
        assert!(ab.lookup("<tag>").is_some());
        assert!(ab.lookup("&").is_some());
        assert!(ab.lookup("x").is_some());
        // no element named `tag` was ever opened
        assert!(ab.lookup("tag").is_none());

        // a lone `]` before the real terminator stays in the content
        let mut ab = Alphabet::new();
        let events = tokenize("<![CDATA[a]]]>", &mut ab).unwrap();
        assert_eq!(
            events,
            vec![TaggedSymbol::Internal(ab.lookup("a]").unwrap())]
        );

        // an empty section produces no events at all
        let mut ab = Alphabet::new();
        assert_eq!(tokenize("<![CDATA[]]><r/>", &mut ab).unwrap().len(), 2);

        // unterminated sections are errors, not silent truncation
        let mut ab = Alphabet::new();
        assert!(tokenize("<![CDATA[ x ]] >", &mut ab).is_err());
    }

    #[test]
    fn doctype_internal_subset_is_skipped_whole() {
        // Regression: the `>` of the inner `<!ENTITY …>` declaration used to
        // terminate the DOCTYPE, leaving ` ]>` to be lexed as text.
        let mut ab = Alphabet::new();
        let doc = parse_document(
            r#"<!DOCTYPE doc [ <!ENTITY x "y"> <!ENTITY z "w"> ]><doc>t</doc>"#,
            &mut ab,
        )
        .unwrap();
        assert_eq!(doc.len(), 3);
        assert!(doc.is_rooted());
        assert!(ab.lookup("]>").is_none());
        assert!(ab.lookup("]").is_none());

        // a DTD conditional section (`<![IGNORE[ … ]]>`) is skipped too
        let mut ab = Alphabet::new();
        let doc = parse_document("<!DOCTYPE d [<![IGNORE[ <x> ]]>]><doc>t</doc>", &mut ab);
        let doc = doc.unwrap();
        assert_eq!(doc.len(), 3);
        assert!(ab.lookup("x").is_none());
    }

    #[test]
    fn tag_whitespace_variants_intern_identical_symbols() {
        // All spellings of an element with trailing whitespace or a
        // self-closing slash must produce one and the same symbol, whichever
        // lex_tag branch handles them.
        let mut ab = Alphabet::new();
        let events = tokenize("<tag ></tag ><tag/><tag />", &mut ab).unwrap();
        let tag = ab.lookup("tag").unwrap();
        assert_eq!(
            events,
            vec![
                TaggedSymbol::Call(tag),
                TaggedSymbol::Return(tag),
                TaggedSymbol::Call(tag),
                TaggedSymbol::Return(tag),
                TaggedSymbol::Call(tag),
                TaggedSymbol::Return(tag),
            ]
        );
        assert_eq!(ab.len(), 1);
    }

    #[test]
    fn quoted_gt_does_not_terminate_the_tag() {
        let mut ab = Alphabet::new();
        let events = tokenize(r#"<sec title="a>b">t</sec>"#, &mut ab).unwrap();
        let sec = ab.lookup("sec").unwrap();
        assert_eq!(events[0], TaggedSymbol::Call(sec));
        assert_eq!(events[2], TaggedSymbol::Return(sec));
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn self_closing_tag_with_attributes() {
        let mut ab = Alphabet::new();
        let events = tokenize(r#"<img src="i.png"/>"#, &mut ab).unwrap();
        let img = ab.lookup("img").unwrap();
        assert_eq!(
            events,
            vec![TaggedSymbol::Call(img), TaggedSymbol::Return(img)]
        );
    }

    #[test]
    fn empty_tag_name_is_an_error() {
        let mut ab = Alphabet::new();
        assert!(tokenize("<>", &mut ab).is_err());
        assert!(tokenize("</ >", &mut ab).is_err());
    }

    #[test]
    fn tokenizer_is_incremental_and_fused() {
        let mut batch_ab = Alphabet::new();
        let text = r#"<doc><sec n="1">hello world</sec><sec/></doc>"#;
        let batch = tokenize(text, &mut batch_ab).unwrap();

        // One event at a time, from a plain char iterator.
        let mut ab = Alphabet::new();
        let tok = Tokenizer::new(text.chars(), &mut ab);
        let mut streamed = Vec::new();
        for item in tok {
            streamed.push(item.unwrap());
        }
        assert_eq!(streamed, batch);
        assert_eq!(ab, batch_ab);

        // After an error the iterator is fused.
        let mut ab2 = Alphabet::new();
        let mut bad = Tokenizer::new("<doc".chars(), &mut ab2);
        assert!(bad.next().unwrap().is_err());
        assert!(bad.next().is_none());
    }
}
