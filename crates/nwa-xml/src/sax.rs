//! SAX-style tokenization of a lightweight XML syntax into nested words.
//!
//! Supported syntax: `<tag>` (open, attributes ignored), `</tag>` (close),
//! `<tag/>` (empty element), `<!…>` / `<?…?>` directives (skipped, including
//! DOCTYPEs with a `[ … ]` internal subset), `<![CDATA[ … ]]>` sections
//! (content lexed as text), and bare
//! text tokens (split on whitespace), e.g.
//! `"<doc><sec n="1">hello world</sec><sec/></doc>"`. Unmatched open and
//! close tags are allowed — they become pending calls and returns, exactly
//! the situation §1 highlights as awkward for tree-based models.
//!
//! Three incremental front ends share one event-building core
//! (`LexerCore` — the [`ResolveName`] policy, the queued-event buffer, and
//! the tag/CDATA classification rules), behind two lexing engines: the
//! char-at-a-time [`EventLexer`] and the bulk structural scanner of
//! [`crate::scan`]:
//!
//! * [`Tokenizer`] — an iterator over
//!   `Result<TaggedSymbol, NestedWordError>` that lexes one SAX event at a
//!   time from any `Iterator<Item = char>` (the [`EventLexer`] engine);
//! * [`ByteTokenizer`] — the byte-level source: one SAX event at a time
//!   from any [`std::io::Read`], swept chunk-at-a-time by the bulk scanner
//!   (UTF-8 validated per chunk, multi-byte sequences split across `read`
//!   calls carried over the seam, invalid or truncated sequences surfacing
//!   as typed [`SaxError`]s) without ever materializing the document — the
//!   bytes-in → events-out pipeline of §1;
//! * [`FrozenByteTokenizer`] — the same byte-level source against a
//!   *read-only* alphabet ([`ResolveName`] chooses between the two
//!   policies): names are looked up instead of interned, an unknown name is
//!   a typed [`NestedWordError::UnknownSymbol`], and the alphabet is never
//!   copied or mutated — the serving-path front end, where the alphabet
//!   must stay aligned with a compiled artifact.
//!
//! Neither front end materializes a [`TaggedWord`] or [`NestedWord`];
//! feeding one straight into `query::run_stream` evaluates a document query
//! in one pass with memory proportional to the nesting depth. [`tokenize`]
//! and [`parse_document`] are the batch conveniences on top.

use nested_words::{Alphabet, NestedWord, NestedWordError, Symbol, TaggedSymbol, TaggedWord};
use std::collections::VecDeque;
use std::io;

/// Errors of the byte-level SAX pipeline: everything that can go wrong
/// between raw bytes and tagged-symbol events.
///
/// The char-level [`Tokenizer`] can only fail with [`SaxError::Syntax`] (its
/// input is already decoded), so it keeps yielding plain
/// [`NestedWordError`]s; the byte-level [`ByteTokenizer`] adds the I/O and
/// UTF-8 failure modes.
#[derive(Debug)]
pub enum SaxError {
    /// A lexical error in the XML-ish syntax (unterminated tag, empty tag
    /// name, full alphabet, …).
    Syntax(NestedWordError),
    /// The underlying reader failed.
    Io(io::Error),
    /// An invalid UTF-8 sequence (bad leading byte, bad continuation byte,
    /// overlong encoding, surrogate or out-of-range scalar) at the given
    /// byte offset.
    InvalidUtf8 {
        /// Byte offset of the first byte of the offending sequence.
        offset: usize,
    },
    /// The input ended in the middle of a multi-byte UTF-8 sequence.
    TruncatedUtf8 {
        /// Byte offset of the first byte of the truncated sequence.
        offset: usize,
    },
}

impl std::fmt::Display for SaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaxError::Syntax(e) => write!(f, "{e}"),
            SaxError::Io(e) => write!(f, "read error: {e}"),
            SaxError::InvalidUtf8 { offset } => {
                write!(f, "invalid UTF-8 sequence at byte {offset}")
            }
            SaxError::TruncatedUtf8 { offset } => {
                write!(
                    f,
                    "input ends inside a multi-byte UTF-8 sequence starting at byte {offset}"
                )
            }
        }
    }
}

impl std::error::Error for SaxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SaxError::Syntax(e) => Some(e),
            SaxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NestedWordError> for SaxError {
    fn from(e: NestedWordError) -> Self {
        SaxError::Syntax(e)
    }
}

// --------------------------------------------------------------------------
// Incremental UTF-8 decoding over io::Read
// --------------------------------------------------------------------------

/// An iterator of `Result<char, SaxError>` decoding UTF-8 incrementally
/// from any [`io::Read`].
///
/// Bytes are pulled through an internal buffer one decoded scalar at a
/// time, so a multi-byte sequence split across `read` calls (or across
/// buffer refills) is reassembled transparently. Validation is strict
/// (WHATWG table): overlong encodings, surrogates and scalars above
/// `U+10FFFF` are [`SaxError::InvalidUtf8`]; EOF inside a sequence is
/// [`SaxError::TruncatedUtf8`]. After any error the iterator is fused.
#[derive(Debug)]
pub struct Utf8Chars<R: io::Read> {
    reader: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    /// Absolute byte offset of the next unread byte.
    offset: usize,
    failed: bool,
}

impl<R: io::Read> Utf8Chars<R> {
    /// Starts decoding `reader` with the default 8 KiB buffer.
    pub fn new(reader: R) -> Self {
        Utf8Chars {
            reader,
            buf: vec![0; 8 * 1024],
            start: 0,
            end: 0,
            offset: 0,
            failed: false,
        }
    }

    /// Pulls one byte, refilling the buffer as needed. `Ok(None)` is EOF.
    fn next_byte(&mut self) -> Result<Option<u8>, SaxError> {
        while self.start == self.end {
            match self.reader.read(&mut self.buf) {
                Ok(0) => return Ok(None),
                Ok(n) => {
                    self.start = 0;
                    self.end = n;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(SaxError::Io(e)),
            }
        }
        let b = self.buf[self.start];
        self.start += 1;
        self.offset += 1;
        Ok(Some(b))
    }

    fn decode_next(&mut self) -> Result<Option<char>, SaxError> {
        let start = self.offset;
        let b0 = match self.next_byte()? {
            None => return Ok(None),
            Some(b) => b,
        };
        if b0 < 0x80 {
            return Ok(Some(b0 as char));
        }
        // (sequence length, allowed range of the second byte): the WHATWG
        // encoding table, which rejects overlong forms (C0/C1, E0 80–9F,
        // F0 80–8F), surrogates (ED A0–BF) and scalars past U+10FFFF
        // (F4 90–BF, F5–FF) at the second byte.
        let (len, min_b1, max_b1) = match b0 {
            0xC2..=0xDF => (2, 0x80, 0xBF),
            0xE0 => (3, 0xA0, 0xBF),
            0xE1..=0xEC | 0xEE..=0xEF => (3, 0x80, 0xBF),
            0xED => (3, 0x80, 0x9F),
            0xF0 => (4, 0x90, 0xBF),
            0xF1..=0xF3 => (4, 0x80, 0xBF),
            0xF4 => (4, 0x80, 0x8F),
            _ => return Err(SaxError::InvalidUtf8 { offset: start }),
        };
        let mut cp = (b0 as u32) & (0x7F >> len);
        for i in 1..len {
            let b = match self.next_byte()? {
                None => return Err(SaxError::TruncatedUtf8 { offset: start }),
                Some(b) => b,
            };
            let (lo, hi) = if i == 1 {
                (min_b1, max_b1)
            } else {
                (0x80, 0xBF)
            };
            if b < lo || b > hi {
                return Err(SaxError::InvalidUtf8 { offset: start });
            }
            cp = (cp << 6) | ((b as u32) & 0x3F);
        }
        match char::from_u32(cp) {
            Some(c) => Ok(Some(c)),
            // Unreachable given the table above, but a defensive error beats
            // a panic on a decoder bug.
            None => Err(SaxError::InvalidUtf8 { offset: start }),
        }
    }
}

impl<R: io::Read> Iterator for Utf8Chars<R> {
    type Item = Result<char, SaxError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.decode_next() {
            Ok(Some(c)) => Some(Ok(c)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

// --------------------------------------------------------------------------
// The shared lexing engine
// --------------------------------------------------------------------------

/// How the lexing engine maps lexed names (tag names, text tokens) to
/// [`Symbol`]s.
///
/// Two policies exist:
///
/// * `&mut Alphabet` — **interning**: a name seen for the first time is
///   added to the alphabet ([`Alphabet::try_intern`]); this is what the
///   parsing front ends ([`Tokenizer`], [`ByteTokenizer`]) use, where the
///   alphabet is being *built* from the document.
/// * `&Alphabet` — **read-only lookup**: an unknown name is a typed
///   [`NestedWordError::UnknownSymbol`] and the alphabet is never mutated;
///   this is what [`FrozenByteTokenizer`] uses on the serving path, where
///   the alphabet is fixed by an already-compiled automaton and must not
///   drift (and must not be cloned per document just to protect it).
pub trait ResolveName {
    /// Maps one lexed name to a symbol, or fails with a typed error.
    fn resolve(&mut self, name: &str) -> Result<Symbol, NestedWordError>;
}

impl ResolveName for &mut Alphabet {
    fn resolve(&mut self, name: &str) -> Result<Symbol, NestedWordError> {
        self.try_intern(name)
    }
}

impl ResolveName for &Alphabet {
    fn resolve(&mut self, name: &str) -> Result<Symbol, NestedWordError> {
        self.lookup(name)
            .ok_or_else(|| NestedWordError::UnknownSymbol {
                name: name.to_string(),
            })
    }
}

/// The name-to-event builder shared by the char-at-a-time [`EventLexer`]
/// and the bulk [`scan`](crate::scan) path: it owns the [`ResolveName`]
/// policy, the queue of already-lexed events (the return of a self-closing
/// tag, the text tokens of a CDATA section) and the post-error fuse, plus
/// the two classification steps both paths share verbatim — turning a tag
/// body into its event and splitting CDATA content into text tokens.
/// Keeping these in one place is what makes the two lexers equivalent by
/// construction rather than by parallel maintenance.
#[derive(Debug)]
pub(crate) struct LexerCore<N: ResolveName> {
    pub(crate) names: N,
    /// Queued events: the return of a self-closing tag, or the text tokens
    /// of a CDATA section.
    pub(crate) queued: VecDeque<TaggedSymbol>,
    /// Set after yielding an error; the iterator is fused.
    pub(crate) failed: bool,
    /// Direct-mapped memo of recent name resolutions (see
    /// [`LexerCore::resolve_bytes`]).
    cache: Vec<NameCacheEntry>,
}

/// One slot of the name-resolution memo: the name's bytes zero-padded into
/// two words plus its length — an *exact* key (equal key ⇔ equal bytes), so
/// a hit needs no hashing, no string compare and no allocation. `len` is
/// `EMPTY_SLOT` for never-filled slots; names longer than 16 bytes are not
/// cached (they fall through to the policy every time).
#[derive(Debug, Clone, Copy)]
struct NameCacheEntry {
    w0: u64,
    w1: u64,
    len: u32,
    sym: Symbol,
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Slots in the name memo. Documents draw their names from a small, heavily
/// repeated set (element vocabularies, recurring words), so even a small
/// direct-mapped table converges to all-hits; 256 slots × 24 bytes keep it
/// L1-resident.
const NAME_CACHE_SLOTS: usize = 256;

/// Is this byte one of the six ASCII characters `char::is_whitespace`
/// accepts (TAB, LF, VT, FF, CR, space)?
#[inline(always)]
pub(crate) fn is_ascii_whitespace_byte(b: u8) -> bool {
    b == b' ' || (0x09..=0x0D).contains(&b)
}

/// Marker: a non-ASCII byte decided an ASCII-only classification attempt.
pub(crate) struct NonAscii;

/// `split_whitespace().next()` on bytes, ASCII-only: skips leading ASCII
/// whitespace, takes bytes up to the next ASCII whitespace (or the end).
/// A non-ASCII byte in either role — it could be Unicode whitespace or a
/// multi-byte name character — aborts with [`NonAscii`] so the caller can
/// fall back to char-level classification. `Ok(None)` means only
/// whitespace was found.
#[inline]
pub(crate) fn ascii_first_token(bytes: &[u8]) -> Result<Option<&[u8]>, NonAscii> {
    let mut i = 0;
    while i < bytes.len() && is_ascii_whitespace_byte(bytes[i]) {
        i += 1;
    }
    if i == bytes.len() {
        return Ok(None);
    }
    if bytes[i] >= 0x80 {
        return Err(NonAscii);
    }
    let start = i;
    while i < bytes.len() {
        let b = bytes[i];
        if is_ascii_whitespace_byte(b) {
            return Ok(Some(&bytes[start..i]));
        }
        if b >= 0x80 {
            return Err(NonAscii);
        }
        i += 1;
    }
    Ok(Some(&bytes[start..]))
}

/// Packs up to 16 name bytes into two little-endian words, zero-padded.
/// Built with shift-or rather than a copy into a padded buffer: names are
/// typically 2–10 bytes, where a dynamic-length `memcpy` call would cost
/// more than the whole cache probe.
#[inline(always)]
fn pack_name(bytes: &[u8]) -> (u64, u64) {
    let mut w0 = 0u64;
    let mut w1 = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        if i < 8 {
            w0 |= u64::from(b) << (8 * i);
        } else {
            w1 |= u64::from(b) << (8 * (i - 8));
        }
    }
    (w0, w1)
}

impl<N: ResolveName> LexerCore<N> {
    pub(crate) fn new(names: N) -> Self {
        LexerCore {
            names,
            queued: VecDeque::new(),
            failed: false,
            cache: vec![
                NameCacheEntry {
                    w0: 0,
                    w1: 0,
                    len: EMPTY_SLOT,
                    sym: Symbol(0),
                };
                NAME_CACHE_SLOTS
            ],
        }
    }

    /// Maps one lexed name to a symbol through the policy. Equivalent to
    /// [`LexerCore::resolve_bytes`] (which it wraps); the `&str` form is
    /// what the char-level lexer holds.
    pub(crate) fn resolve(&mut self, name: &str) -> Result<Symbol, SaxError> {
        self.resolve_bytes(name.as_bytes())
    }

    /// Maps one lexed name (guaranteed-valid UTF-8 bytes — a slice of a
    /// validated window or of a `&str`) to a symbol through the policy,
    /// memoized in a direct-mapped cache: resolution is the per-event step
    /// the scanner cannot batch, and the policy's `HashMap` lookup
    /// (SipHash, probe, `str` re-validation) would otherwise dominate the
    /// whole tokenizer on short names. Both policies are idempotent per name —
    /// interning returns the same symbol it first assigned, frozen lookup
    /// never changes — so a cached hit is exactly the policy's answer.
    /// Failures (unknown name, alphabet full) are not cached and always
    /// re-consult the policy.
    #[inline]
    pub(crate) fn resolve_bytes(&mut self, name: &[u8]) -> Result<Symbol, SaxError> {
        if name.len() <= 16 {
            let (w0, w1) = pack_name(name);
            let len = name.len() as u32;
            // Any mix is fine — a slot collision costs a policy call, not
            // a wrong answer (the key compare below is exact).
            let mix =
                (w0 ^ w1.rotate_left(29) ^ u64::from(len)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let slot = (mix >> 56) as usize & (NAME_CACHE_SLOTS - 1);
            let e = self.cache[slot];
            if e.w0 == w0 && e.w1 == w1 && e.len == len {
                return Ok(e.sym);
            }
            let name = std::str::from_utf8(name).expect("resolve_bytes takes valid UTF-8");
            let sym = self.names.resolve(name)?;
            self.cache[slot] = NameCacheEntry { w0, w1, len, sym };
            return Ok(sym);
        }
        let name = std::str::from_utf8(name).expect("resolve_bytes takes valid UTF-8");
        Ok(self.names.resolve(name)?)
    }

    /// The SIMD fill path's spelling of [`Self::resolve_bytes`] for short
    /// names: the caller already holds the exact cache key — the same
    /// `(w0, w1)` value [`pack_name`] would produce, built from two masked
    /// word loads of its in-bounds window — so a hit costs only the probe.
    /// Misses take the identical policy path and fill the same slot, so
    /// the answer (and the cache state left behind) matches
    /// `resolve_bytes` exactly.
    #[cfg(feature = "simd")]
    #[inline]
    pub(crate) fn resolve_prepacked(
        &mut self,
        w0: u64,
        w1: u64,
        name: &[u8],
    ) -> Result<Symbol, SaxError> {
        debug_assert!((1..=16).contains(&name.len()));
        debug_assert_eq!(pack_name(name), (w0, w1));
        let len = name.len() as u32;
        let mix = (w0 ^ w1.rotate_left(29) ^ u64::from(len)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let slot = (mix >> 56) as usize & (NAME_CACHE_SLOTS - 1);
        let e = self.cache[slot];
        if e.w0 == w0 && e.w1 == w1 && e.len == len {
            return Ok(e.sym);
        }
        self.resolve_prepacked_miss(w0, w1, slot, name)
    }

    /// The policy-consulting tail of [`Self::resolve_prepacked`], kept out
    /// of the inlined probe: per distinct name it runs once, while the
    /// probe runs per event.
    #[cfg(feature = "simd")]
    #[cold]
    fn resolve_prepacked_miss(
        &mut self,
        w0: u64,
        w1: u64,
        slot: usize,
        name: &[u8],
    ) -> Result<Symbol, SaxError> {
        let len = name.len() as u32;
        let name = std::str::from_utf8(name).expect("resolve_prepacked takes valid UTF-8");
        let sym = self.names.resolve(name)?;
        self.cache[slot] = NameCacheEntry { w0, w1, len, sym };
        Ok(sym)
    }

    /// Classifies one tag body (the characters between `<` and `>`) into
    /// its SAX event, queueing the return of a self-closing tag:
    ///
    /// * a leading `/` is a close tag — the name is the first
    ///   whitespace-separated token of the rest (attributes ignored);
    /// * otherwise the body is trimmed, a trailing `/` marks the tag
    ///   self-closing, and the name is again the first token — so
    ///   `<sec a="1">` and `</sec>` produce the *same* symbol;
    /// * a body with no name at all is the typed `empty tag name` error at
    ///   the tag's opening offset.
    pub(crate) fn tag_event(
        &mut self,
        body: &str,
        tag_start: usize,
    ) -> Result<TaggedSymbol, SaxError> {
        let empty_name = || {
            SaxError::Syntax(NestedWordError::Parse {
                offset: tag_start,
                message: "empty tag name".into(),
            })
        };
        if let Some(rest) = body.strip_prefix('/') {
            let name = rest.split_whitespace().next().ok_or_else(empty_name)?;
            let sym = self.resolve(name)?;
            return Ok(TaggedSymbol::Return(sym));
        }
        // Both branches read the same trimmed body. (The untrimmed view the
        // non-self-closing branch previously took was harmless — the name is
        // extracted with split_whitespace — but equal inputs by construction
        // beat equal-by-coincidence.)
        let trimmed = body.trim_end();
        let (inner, self_closing) = match trimmed.strip_suffix('/') {
            Some(inner) => (inner, true),
            None => (trimmed, false),
        };
        let name = inner.split_whitespace().next().ok_or_else(empty_name)?;
        let sym = self.resolve(name)?;
        if self_closing {
            self.queued.push_back(TaggedSymbol::Return(sym));
        }
        Ok(TaggedSymbol::Call(sym))
    }

    /// [`LexerCore::tag_event`] from validated window bytes: the all-ASCII
    /// classification steps (leading `/`, trailing-whitespace trim, first
    /// whitespace-separated token) run byte-level; any non-ASCII byte in a
    /// deciding position (inside the name, or in the trailing run that the
    /// trim must judge) falls back to the char-level classifier, which is
    /// the semantics. Same result for the same bytes, by construction for
    /// the fallback and because ASCII classification agrees with Unicode
    /// classification wherever only ASCII is inspected.
    pub(crate) fn tag_event_bytes(
        &mut self,
        body: &[u8],
        tag_start: usize,
    ) -> Result<TaggedSymbol, SaxError> {
        let fallback = |core: &mut Self| {
            let body = std::str::from_utf8(body).expect("the window holds validated UTF-8");
            core.tag_event(body, tag_start)
        };
        let empty_name = || {
            SaxError::Syntax(NestedWordError::Parse {
                offset: tag_start,
                message: "empty tag name".into(),
            })
        };
        if body.first() == Some(&b'/') {
            return match ascii_first_token(&body[1..]) {
                Err(NonAscii) => fallback(self),
                Ok(None) => Err(empty_name()),
                Ok(Some(name)) => Ok(TaggedSymbol::Return(self.resolve_bytes(name)?)),
            };
        }
        // trim_end: drop trailing ASCII whitespace; a non-ASCII byte at the
        // trimmed end could itself be Unicode whitespace — let chars decide.
        let mut end = body.len();
        while end > 0 && is_ascii_whitespace_byte(body[end - 1]) {
            end -= 1;
        }
        if end > 0 && body[end - 1] >= 0x80 {
            return fallback(self);
        }
        let (inner, self_closing) = match body[..end].split_last() {
            Some((b'/', inner)) => (inner, true),
            _ => (&body[..end], false),
        };
        match ascii_first_token(inner) {
            Err(NonAscii) => fallback(self),
            Ok(None) => Err(empty_name()),
            Ok(Some(name)) => {
                let sym = self.resolve_bytes(name)?;
                if self_closing {
                    self.queued.push_back(TaggedSymbol::Return(sym));
                }
                Ok(TaggedSymbol::Call(sym))
            }
        }
    }

    /// Splits CDATA content into whitespace-separated text tokens and
    /// queues them — resolving every token before queuing any, so an
    /// alphabet-full or unknown-symbol error surfaces without half the
    /// section already emitted.
    pub(crate) fn cdata_tokens(&mut self, content: &str) -> Result<(), SaxError> {
        let mut events = Vec::new();
        for token in content.split_whitespace() {
            events.push(TaggedSymbol::Internal(self.resolve(token)?));
        }
        self.queued.extend(events);
        Ok(())
    }
}

/// A peekable, offset-tracking adapter over a fallible char source.
#[derive(Debug)]
struct Source<S> {
    iter: S,
    peeked: Option<char>,
    /// Byte offset of the next unread character (for error reporting).
    offset: usize,
}

impl<S: Iterator<Item = Result<char, SaxError>>> Source<S> {
    fn new(iter: S) -> Self {
        Source {
            iter,
            peeked: None,
            offset: 0,
        }
    }

    /// Peeks the next character. A source error is consumed and returned
    /// (the lexer fuses after any error, so nothing is lost).
    fn peek(&mut self) -> Result<Option<char>, SaxError> {
        if self.peeked.is_none() {
            match self.iter.next() {
                None => return Ok(None),
                Some(Ok(c)) => self.peeked = Some(c),
                Some(Err(e)) => return Err(e),
            }
        }
        Ok(self.peeked)
    }

    /// Consumes the next character, advancing the byte offset.
    fn bump(&mut self) -> Result<Option<char>, SaxError> {
        let c = match self.peeked.take() {
            Some(c) => Some(c),
            None => match self.iter.next() {
                None => None,
                Some(Ok(c)) => Some(c),
                Some(Err(e)) => return Err(e),
            },
        };
        if let Some(c) = c {
            self.offset += c.len_utf8();
        }
        Ok(c)
    }
}

/// The lexing engine shared by [`Tokenizer`] (chars in), [`ByteTokenizer`]
/// (bytes in) and [`FrozenByteTokenizer`] (bytes in, read-only alphabet): an
/// iterator over `Result<TaggedSymbol, SaxError>` that yields one event per
/// open tag, close tag, or whitespace-separated text token, resolving names
/// through the [`ResolveName`] policy as it goes.
///
/// * Tag names end at the first whitespace character; anything after it
///   (attributes) is ignored, so `<sec a="1">` and `</sec>` produce the
///   *same* symbol.
/// * A `>` inside a single- or double-quoted attribute value does not
///   terminate the tag.
/// * `<!…>` declarations/comments and `<?…?>` processing instructions are
///   skipped entirely; a `<!DOCTYPE …>` may carry a `[ … ]` internal subset
///   whose declarations contain `>`.
/// * `<![CDATA[ … ]]>` sections run to their `]]>` terminator; their
///   content is character data and is lexed as ordinary text tokens, so a
///   `>`, `&` or even `<tag>` inside CDATA is never mistaken for markup.
/// * `<tag/>` (with or without attributes) yields a call immediately
///   followed by a return.
///
/// Errors — lexical ([`SaxError::Syntax`]: `unterminated tag`, `empty tag
/// name`, name-resolution failures from the [`ResolveName`] policy) or, for
/// byte sources, I/O and UTF-8 failures — are yielded once, after which the
/// iterator is fused.
#[derive(Debug)]
pub struct EventLexer<S: Iterator<Item = Result<char, SaxError>>, N: ResolveName> {
    source: Source<S>,
    core: LexerCore<N>,
}

impl<S: Iterator<Item = Result<char, SaxError>>, N: ResolveName> EventLexer<S, N> {
    /// Creates a lexer over a fallible character source, resolving symbol
    /// names through `names`.
    pub fn new(source: S, names: N) -> Self {
        EventLexer {
            source: Source::new(source),
            core: LexerCore::new(names),
        }
    }

    /// Skips or lexes one directive, with the cursor just past `<` and on
    /// `!` or `?`. Comments run to `-->`, processing instructions to `?>`,
    /// CDATA sections to `]]>` (their content is queued as text tokens, see
    /// [`EventLexer::lex_cdata`]); other declarations (`<!DOCTYPE …>`) run
    /// to the first `>` *outside* a `[ … ]` internal subset, so an entity
    /// declaration's `>` inside the subset does not end the DOCTYPE early.
    /// Attribute-quote rules do not apply inside directives, so an
    /// apostrophe or a bare `>` in a comment does not derail the lexer.
    fn lex_directive(&mut self, tag_start: usize) -> Result<(), SaxError> {
        let unterminated = || {
            SaxError::Syntax(NestedWordError::Parse {
                offset: tag_start,
                message: "unterminated directive".into(),
            })
        };
        let lead = self.source.bump()?.expect("caller peeked '!' or '?'");
        if lead == '!' && self.source.peek()? == Some('-') {
            self.source.bump()?;
            if self.source.peek()? == Some('-') {
                self.source.bump()?;
                // comment: scan for the "-->" terminator
                let mut dashes = 0usize;
                loop {
                    match self.source.bump()? {
                        None => return Err(unterminated()),
                        Some('-') => dashes += 1,
                        Some('>') if dashes >= 2 => return Ok(()),
                        Some(_) => dashes = 0,
                    }
                }
            }
            // "<!-…" without a second dash: fall through to the '>' scan
        }
        if lead == '?' {
            // processing instruction: scan for the "?>" terminator
            let mut prev_question = false;
            loop {
                match self.source.bump()? {
                    None => return Err(unterminated()),
                    Some('>') if prev_question => return Ok(()),
                    Some(c) => prev_question = c == '?',
                }
            }
        }
        // `[`…`]` nesting depth of a DOCTYPE internal subset; a `>` only
        // terminates the directive at depth zero.
        let mut depth = 0usize;
        if lead == '!' && self.source.peek()? == Some('[') {
            self.source.bump()?;
            // `<![`: a CDATA section if the marker `CDATA[` follows.
            const MARKER: [char; 6] = ['C', 'D', 'A', 'T', 'A', '['];
            let mut matched = 0usize;
            while matched < MARKER.len() && self.source.peek()? == Some(MARKER[matched]) {
                self.source.bump()?;
                matched += 1;
            }
            if matched == MARKER.len() {
                return self.lex_cdata(tag_start);
            }
            // Not CDATA (e.g. a DTD conditional section): the consumed `[`
            // opened one bracket level; fall through to the scan.
            depth = 1;
        }
        loop {
            match self.source.bump()? {
                None => return Err(unterminated()),
                Some('[') => depth += 1,
                Some(']') => depth = depth.saturating_sub(1),
                Some('>') if depth == 0 => return Ok(()),
                Some(_) => {}
            }
        }
    }

    /// Lexes a CDATA section, with the cursor just past `<![CDATA[`: scans
    /// to the `]]>` terminator and queues the content as ordinary
    /// whitespace-separated text tokens. Everything inside — `>`, `&`, even
    /// `<tag>` — is character data, never markup.
    fn lex_cdata(&mut self, tag_start: usize) -> Result<(), SaxError> {
        let mut content = String::new();
        loop {
            match self.source.bump()? {
                None => {
                    return Err(SaxError::Syntax(NestedWordError::Parse {
                        offset: tag_start,
                        message: "unterminated CDATA section".into(),
                    }));
                }
                Some(c) => {
                    content.push(c);
                    if content.ends_with("]]>") {
                        content.truncate(content.len() - 3);
                        break;
                    }
                }
            }
        }
        self.core.cdata_tokens(&content)
    }

    /// Lexes one `<…>` construct, with the cursor on `<`. Returns `None`
    /// for skipped directives.
    fn lex_tag(&mut self) -> Result<Option<TaggedSymbol>, SaxError> {
        let tag_start = self.source.offset;
        self.source.bump()?; // consume '<'
        if matches!(self.source.peek()?, Some('!') | Some('?')) {
            // <!DOCTYPE …>, <!-- … -->, <?xml … ?>: no SAX event.
            self.lex_directive(tag_start)?;
            return Ok(None);
        }
        let mut content = String::new();
        let mut quote: Option<char> = None;
        loop {
            match self.source.bump()? {
                None => {
                    return Err(SaxError::Syntax(NestedWordError::Parse {
                        offset: tag_start,
                        message: "unterminated tag".into(),
                    }));
                }
                Some(c) => match quote {
                    Some(q) => {
                        if c == q {
                            quote = None;
                        }
                        content.push(c);
                    }
                    None => {
                        if c == '>' {
                            break;
                        }
                        if c == '"' || c == '\'' {
                            quote = Some(c);
                        }
                        content.push(c);
                    }
                },
            }
        }
        self.core.tag_event(&content, tag_start).map(Some)
    }

    /// Lexes one whitespace-delimited text token, with the cursor on its
    /// first character.
    fn lex_text(&mut self) -> Result<TaggedSymbol, SaxError> {
        let mut word = String::new();
        while let Some(c) = self.source.peek()? {
            if c == '<' || c.is_whitespace() {
                break;
            }
            word.push(c);
            self.source.bump()?;
        }
        let sym = self.core.resolve(&word)?;
        Ok(TaggedSymbol::Internal(sym))
    }

    fn next_event(&mut self) -> Result<Option<TaggedSymbol>, SaxError> {
        loop {
            // Drained inside the loop: a skipped CDATA section queues text
            // tokens that must come out before the next character is lexed.
            if let Some(t) = self.core.queued.pop_front() {
                return Ok(Some(t));
            }
            match self.source.peek()? {
                None => return Ok(None),
                Some('<') => {
                    if let Some(t) = self.lex_tag()? {
                        return Ok(Some(t));
                    }
                    // directive skipped
                }
                Some(c) if c.is_whitespace() => {
                    self.source.bump()?;
                }
                Some(_) => return self.lex_text().map(Some),
            }
        }
    }
}

impl<S: Iterator<Item = Result<char, SaxError>>, N: ResolveName> Iterator for EventLexer<S, N> {
    type Item = Result<TaggedSymbol, SaxError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.core.failed {
            return None;
        }
        match self.next_event() {
            Ok(Some(t)) => Some(Ok(t)),
            Ok(None) => None,
            Err(e) => {
                self.core.failed = true;
                Some(Err(e))
            }
        }
    }
}

// --------------------------------------------------------------------------
// The two public front ends
// --------------------------------------------------------------------------

fn infallible(c: char) -> Result<char, SaxError> {
    Ok(c)
}

/// The adapter type lifting an infallible char iterator into the
/// [`EventLexer`]'s fallible source.
type OkChars<I> = std::iter::Map<I, fn(char) -> Result<char, SaxError>>;

/// An incremental SAX lexer over a plain character stream: yields one
/// [`TaggedSymbol`] event per open tag, close tag, or whitespace-separated
/// text token, interning names into the borrowed alphabet as it goes. See
/// [`EventLexer`] for the lexical rules; since the input is already decoded,
/// the only possible failures are syntactic, reported as plain
/// [`NestedWordError`]s.
#[derive(Debug)]
pub struct Tokenizer<'a, I: Iterator<Item = char>> {
    inner: EventLexer<OkChars<I>, &'a mut Alphabet>,
}

impl<'a, I: Iterator<Item = char>> Tokenizer<'a, I> {
    /// Creates a tokenizer over a character stream, interning symbol names
    /// into `alphabet`.
    pub fn new(chars: I, alphabet: &'a mut Alphabet) -> Self {
        Tokenizer {
            inner: EventLexer::new(chars.map(infallible as fn(char) -> _), alphabet),
        }
    }
}

impl<I: Iterator<Item = char>> Iterator for Tokenizer<'_, I> {
    type Item = Result<TaggedSymbol, NestedWordError>;

    fn next(&mut self) -> Option<Self::Item> {
        Some(match self.inner.next()? {
            Ok(t) => Ok(t),
            Err(SaxError::Syntax(e)) => Err(e),
            // Unreachable from an infallible char source, but mapped rather
            // than panicked on out of caution.
            Err(other) => Err(NestedWordError::Parse {
                offset: 0,
                message: other.to_string(),
            }),
        })
    }
}

/// The byte-level SAX front end of the ROADMAP: an incremental lexer over
/// any [`io::Read`], yielding one [`TaggedSymbol`] event at a time — no
/// materialized document, memory proportional to the scan window plus the
/// current token.
///
/// Since the tokenizer-wall refactor this front end runs on the bulk
/// structural scanner ([`crate::scan`]): bytes are pulled in
/// [`scan::SCAN_CHUNK`](crate::scan::SCAN_CHUNK)-sized chunks, UTF-8 is
/// validated a chunk at a time (multi-byte sequences split across `read`
/// calls are carried over the seam), and tags, text runs, CDATA sections
/// and directives are classified with whole-run byte sweeps instead of
/// per-character dispatch. The yielded stream is token-for-token and
/// error-for-error identical to the char-level [`EventLexer`] over the
/// same bytes (property-tested in `tests/sax_scan.rs`).
///
/// Invalid UTF-8, sequences truncated by EOF (or split across `read` calls
/// and never completed) and I/O failures surface as typed [`SaxError`]s;
/// after any error the iterator is fused.
///
/// ```
/// use nested_words::{Alphabet, TaggedSymbol};
/// use nwa_xml::sax::ByteTokenizer;
///
/// let mut ab = Alphabet::new();
/// let events: Result<Vec<_>, _> =
///     ByteTokenizer::new("<doc>héllo</doc>".as_bytes(), &mut ab).collect();
/// let events = events.unwrap();
/// assert_eq!(events.len(), 3);
/// assert_eq!(events[1], TaggedSymbol::Internal(ab.lookup("héllo").unwrap()));
/// ```
#[derive(Debug)]
pub struct ByteTokenizer<'a, R: io::Read> {
    inner: crate::scan::BulkLexer<R, &'a mut Alphabet>,
}

impl<'a, R: io::Read> ByteTokenizer<'a, R> {
    /// Creates a tokenizer over a byte stream, interning symbol names into
    /// `alphabet`.
    pub fn new(reader: R, alphabet: &'a mut Alphabet) -> Self {
        ByteTokenizer {
            inner: crate::scan::BulkLexer::new(reader, alphabet),
        }
    }

    /// Lexes events in bulk into `out` until roughly `max` are buffered or
    /// the stream ends — the slice-producing entry the bytes-in →
    /// verdict-out pipeline feeds to the engines' bulk stepping. Events
    /// lexed before an error stay in `out` (in emission order) when `Err`
    /// is returned.
    pub fn fill(&mut self, out: &mut Vec<TaggedSymbol>, max: usize) -> Result<(), SaxError> {
        self.inner.fill(out, max)
    }
}

impl<R: io::Read> Iterator for ByteTokenizer<'_, R> {
    type Item = Result<TaggedSymbol, SaxError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

/// The serving-path byte-level front end: identical lexing to
/// [`ByteTokenizer`], but against a **read-only** alphabet.
///
/// Names are resolved by lookup only — a name that is not already interned
/// surfaces as [`NestedWordError::UnknownSymbol`] inside
/// [`SaxError::Syntax`], and the alphabet is never mutated. This is the
/// right front end when the alphabet is pinned by an already-compiled
/// automaton (e.g. `nwa-service`'s `submit_bytes`): every yielded symbol is
/// guaranteed to index inside the compiled tables, per-document cost stays
/// independent of alphabet size (no defensive clone), and the shared
/// alphabet cannot drift away from the artifact it was compiled with.
///
/// ```
/// use nested_words::{Alphabet, NestedWordError, TaggedSymbol};
/// use nwa_xml::sax::{FrozenByteTokenizer, SaxError};
///
/// let ab = Alphabet::from_names(["doc", "hi"]);
/// let events: Result<Vec<_>, _> =
///     FrozenByteTokenizer::new("<doc>hi</doc>".as_bytes(), &ab).collect();
/// assert_eq!(events.unwrap().len(), 3);
///
/// let err = FrozenByteTokenizer::new("<intruder/>".as_bytes(), &ab)
///     .next()
///     .unwrap()
///     .unwrap_err();
/// assert!(matches!(
///     err,
///     SaxError::Syntax(NestedWordError::UnknownSymbol { ref name }) if name == "intruder"
/// ));
/// ```
#[derive(Debug)]
pub struct FrozenByteTokenizer<'a, R: io::Read> {
    inner: crate::scan::BulkLexer<R, &'a Alphabet>,
}

impl<'a, R: io::Read> FrozenByteTokenizer<'a, R> {
    /// Creates a tokenizer over a byte stream, resolving symbol names by
    /// read-only lookup in `alphabet`.
    pub fn new(reader: R, alphabet: &'a Alphabet) -> Self {
        FrozenByteTokenizer {
            inner: crate::scan::BulkLexer::new(reader, alphabet),
        }
    }

    /// Lexes events in bulk into `out` until roughly `max` are buffered or
    /// the stream ends; see [`ByteTokenizer::fill`].
    pub fn fill(&mut self, out: &mut Vec<TaggedSymbol>, max: usize) -> Result<(), SaxError> {
        self.inner.fill(out, max)
    }
}

impl<R: io::Read> Iterator for FrozenByteTokenizer<'_, R> {
    type Item = Result<TaggedSymbol, SaxError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

// --------------------------------------------------------------------------
// Batch conveniences
// --------------------------------------------------------------------------

/// Parses a lightweight XML string into a stream of tagged symbols,
/// interning tag names and text tokens into `alphabet` (the batch form of
/// [`Tokenizer`]).
pub fn tokenize(text: &str, alphabet: &mut Alphabet) -> Result<TaggedWord, NestedWordError> {
    Tokenizer::new(text.chars(), alphabet).collect()
}

/// Parses a lightweight XML string directly into a nested word.
pub fn parse_document(text: &str, alphabet: &mut Alphabet) -> Result<NestedWord, NestedWordError> {
    Ok(NestedWord::from_tagged(&tokenize(text, alphabet)?))
}

/// Serializes a nested word back into the lightweight XML syntax.
pub fn to_xml(word: &NestedWord, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    for t in word.to_tagged() {
        let name = alphabet.name(t.symbol()).unwrap_or("?");
        match t {
            TaggedSymbol::Call(_) => {
                out.push('<');
                out.push_str(name);
                out.push('>');
            }
            TaggedSymbol::Return(_) => {
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
            TaggedSymbol::Internal(_) => {
                if !out.is_empty() && !out.ends_with('>') {
                    out.push(' ');
                }
                out.push_str(name);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::tree::is_tree_word;

    #[test]
    fn well_formed_document_roundtrip() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<doc><sec>hello world</sec><sec/></doc>", &mut ab).unwrap();
        assert!(doc.is_rooted());
        assert!(doc.is_well_matched());
        assert_eq!(doc.depth(), 2);
        assert_eq!(
            to_xml(&doc, &ab),
            "<doc><sec>hello world</sec><sec/></doc>".replace("<sec/>", "<sec></sec>")
        );
    }

    #[test]
    fn text_only_document_is_flat() {
        let mut ab = Alphabet::new();
        let doc = parse_document("just some words", &mut ab).unwrap();
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.depth(), 0);
        assert!(doc.is_well_matched());
    }

    #[test]
    fn unmatched_tags_become_pending_edges() {
        let mut ab = Alphabet::new();
        // a document fragment: close without open, open without close (§1's
        // "data that may not parse correctly")
        let doc = parse_document("</a> text <b>", &mut ab).unwrap();
        assert!(!doc.is_well_matched());
        assert!(doc.is_pending_return(0));
        assert!(doc.is_pending_call(2));
    }

    #[test]
    fn element_only_documents_are_tree_words() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<a><b></b><b></b></a>", &mut ab).unwrap();
        assert!(is_tree_word(&doc));
    }

    #[test]
    fn unterminated_tag_is_an_error() {
        let mut ab = Alphabet::new();
        assert!(parse_document("<doc", &mut ab).is_err());
    }

    #[test]
    fn attributes_do_not_change_the_tag_symbol() {
        // Regression: the tag interior used to be interned whole, so
        // `<sec a="1">` and `</sec>` produced different symbols and the
        // element was invisible to tag queries.
        let mut ab = Alphabet::new();
        let events = tokenize(r#"<sec a="1" b='2'>x</sec>"#, &mut ab).unwrap();
        let sec = ab.lookup("sec").unwrap();
        let x = ab.lookup("x").unwrap();
        assert_eq!(
            events,
            vec![
                TaggedSymbol::Call(sec),
                TaggedSymbol::Internal(x),
                TaggedSymbol::Return(sec),
            ]
        );
        assert!(ab.lookup(r#"sec a="1" b='2'"#).is_none());
        let doc = NestedWord::from_tagged(&events);
        assert!(doc.is_rooted());
    }

    #[test]
    fn directives_are_skipped() {
        let mut ab = Alphabet::new();
        let doc = parse_document(
            "<?xml version=\"1.0\"?><!DOCTYPE doc><!-- note --><doc>t</doc>",
            &mut ab,
        )
        .unwrap();
        assert_eq!(doc.len(), 3);
        assert!(doc.is_rooted());
        assert!(ab.lookup("doc").is_some());
        assert!(ab.lookup("?xml").is_none());
    }

    #[test]
    fn hostile_comment_bodies_are_skipped_whole() {
        // An apostrophe must not open quote mode, and a bare '>' must not
        // terminate the comment early.
        let mut ab = Alphabet::new();
        let doc = parse_document("<!-- don't trip --><doc>t</doc>", &mut ab).unwrap();
        assert_eq!(doc.len(), 3);
        assert!(doc.is_rooted());

        let mut ab = Alphabet::new();
        let doc = parse_document("<!-- a>b --><doc>t</doc>", &mut ab).unwrap();
        assert_eq!(doc.len(), 3);
        assert!(ab.lookup("b").is_none());

        // A processing instruction may contain a bare '>'.
        let mut ab = Alphabet::new();
        let doc = parse_document("<?php 1 > 0 ?><doc>t</doc>", &mut ab).unwrap();
        assert_eq!(doc.len(), 3);

        // Unterminated directives are errors, not silent truncation.
        let mut ab = Alphabet::new();
        assert!(parse_document("<!-- never closed >", &mut ab).is_err());
        assert!(parse_document("<?xml version=\"1.0\" >", &mut ab).is_err());
    }

    #[test]
    fn cdata_content_is_text_not_markup() {
        // Regression: the directive scan used to stop at the first `>`, so
        // `<![CDATA[ a > b ]]>` ended after `a ` and re-lexed `b ]]>` (or
        // any markup inside the section) as text and tags.
        let mut ab = Alphabet::new();
        let events = tokenize("<doc><![CDATA[ a > b ]]></doc>", &mut ab).unwrap();
        let doc = ab.lookup("doc").unwrap();
        let a = ab.lookup("a").unwrap();
        let gt = ab.lookup(">").unwrap();
        let b = ab.lookup("b").unwrap();
        assert_eq!(
            events,
            vec![
                TaggedSymbol::Call(doc),
                TaggedSymbol::Internal(a),
                TaggedSymbol::Internal(gt),
                TaggedSymbol::Internal(b),
                TaggedSymbol::Return(doc),
            ]
        );
    }

    #[test]
    fn markup_and_entities_inside_cdata_are_character_data() {
        // `<tag>` inside CDATA must not open an element, and `&` is a plain
        // character (no entity processing).
        let mut ab = Alphabet::new();
        let doc = parse_document("<doc><![CDATA[<tag> & x]]></doc>", &mut ab).unwrap();
        assert!(doc.is_rooted());
        assert_eq!(doc.depth(), 1);
        assert!(ab.lookup("<tag>").is_some());
        assert!(ab.lookup("&").is_some());
        assert!(ab.lookup("x").is_some());
        // no element named `tag` was ever opened
        assert!(ab.lookup("tag").is_none());

        // a lone `]` before the real terminator stays in the content
        let mut ab = Alphabet::new();
        let events = tokenize("<![CDATA[a]]]>", &mut ab).unwrap();
        assert_eq!(
            events,
            vec![TaggedSymbol::Internal(ab.lookup("a]").unwrap())]
        );

        // an empty section produces no events at all
        let mut ab = Alphabet::new();
        assert_eq!(tokenize("<![CDATA[]]><r/>", &mut ab).unwrap().len(), 2);

        // unterminated sections are errors, not silent truncation
        let mut ab = Alphabet::new();
        assert!(tokenize("<![CDATA[ x ]] >", &mut ab).is_err());
    }

    #[test]
    fn doctype_internal_subset_is_skipped_whole() {
        // Regression: the `>` of the inner `<!ENTITY …>` declaration used to
        // terminate the DOCTYPE, leaving ` ]>` to be lexed as text.
        let mut ab = Alphabet::new();
        let doc = parse_document(
            r#"<!DOCTYPE doc [ <!ENTITY x "y"> <!ENTITY z "w"> ]><doc>t</doc>"#,
            &mut ab,
        )
        .unwrap();
        assert_eq!(doc.len(), 3);
        assert!(doc.is_rooted());
        assert!(ab.lookup("]>").is_none());
        assert!(ab.lookup("]").is_none());

        // a DTD conditional section (`<![IGNORE[ … ]]>`) is skipped too
        let mut ab = Alphabet::new();
        let doc = parse_document("<!DOCTYPE d [<![IGNORE[ <x> ]]>]><doc>t</doc>", &mut ab);
        let doc = doc.unwrap();
        assert_eq!(doc.len(), 3);
        assert!(ab.lookup("x").is_none());
    }

    #[test]
    fn tag_whitespace_variants_intern_identical_symbols() {
        // All spellings of an element with trailing whitespace or a
        // self-closing slash must produce one and the same symbol, whichever
        // lex_tag branch handles them.
        let mut ab = Alphabet::new();
        let events = tokenize("<tag ></tag ><tag/><tag />", &mut ab).unwrap();
        let tag = ab.lookup("tag").unwrap();
        assert_eq!(
            events,
            vec![
                TaggedSymbol::Call(tag),
                TaggedSymbol::Return(tag),
                TaggedSymbol::Call(tag),
                TaggedSymbol::Return(tag),
                TaggedSymbol::Call(tag),
                TaggedSymbol::Return(tag),
            ]
        );
        assert_eq!(ab.len(), 1);
    }

    #[test]
    fn quoted_gt_does_not_terminate_the_tag() {
        let mut ab = Alphabet::new();
        let events = tokenize(r#"<sec title="a>b">t</sec>"#, &mut ab).unwrap();
        let sec = ab.lookup("sec").unwrap();
        assert_eq!(events[0], TaggedSymbol::Call(sec));
        assert_eq!(events[2], TaggedSymbol::Return(sec));
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn self_closing_tag_with_attributes() {
        let mut ab = Alphabet::new();
        let events = tokenize(r#"<img src="i.png"/>"#, &mut ab).unwrap();
        let img = ab.lookup("img").unwrap();
        assert_eq!(
            events,
            vec![TaggedSymbol::Call(img), TaggedSymbol::Return(img)]
        );
    }

    #[test]
    fn empty_tag_name_is_an_error() {
        let mut ab = Alphabet::new();
        assert!(tokenize("<>", &mut ab).is_err());
        assert!(tokenize("</ >", &mut ab).is_err());
    }

    #[test]
    fn tokenizer_is_incremental_and_fused() {
        let mut batch_ab = Alphabet::new();
        let text = r#"<doc><sec n="1">hello world</sec><sec/></doc>"#;
        let batch = tokenize(text, &mut batch_ab).unwrap();

        // One event at a time, from a plain char iterator.
        let mut ab = Alphabet::new();
        let tok = Tokenizer::new(text.chars(), &mut ab);
        let mut streamed = Vec::new();
        for item in tok {
            streamed.push(item.unwrap());
        }
        assert_eq!(streamed, batch);
        assert_eq!(ab, batch_ab);

        // After an error the iterator is fused.
        let mut ab2 = Alphabet::new();
        let mut bad = Tokenizer::new("<doc".chars(), &mut ab2);
        assert!(bad.next().unwrap().is_err());
        assert!(bad.next().is_none());
    }

    // ----------------------------------------------------------------------
    // Byte-level tokenization
    // ----------------------------------------------------------------------

    /// A reader that hands out at most `chunk` bytes per `read` call —
    /// adversarial for multi-byte sequences spanning call boundaries.
    struct SplitReader<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl<'a> SplitReader<'a> {
        fn new(data: &'a [u8], chunk: usize) -> Self {
            SplitReader {
                data,
                pos: 0,
                chunk,
            }
        }
    }

    impl io::Read for SplitReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn byte_tokenizer_agrees_with_char_tokenizer() {
        let text = "<doc αβ='γ'><sec>héllo wörld — ≤∅≥</sec><näme/></doc>";
        let mut char_ab = Alphabet::new();
        let chars: Vec<_> = Tokenizer::new(text.chars(), &mut char_ab)
            .collect::<Result<_, _>>()
            .unwrap();
        // Whatever the read granularity — including mid-multi-byte splits —
        // the byte path produces the identical event stream and alphabet.
        for chunk in 1..=7 {
            let mut byte_ab = Alphabet::new();
            let bytes: Vec<_> =
                ByteTokenizer::new(SplitReader::new(text.as_bytes(), chunk), &mut byte_ab)
                    .collect::<Result<_, _>>()
                    .unwrap();
            assert_eq!(bytes, chars, "chunk size {chunk}");
            assert_eq!(byte_ab, char_ab, "chunk size {chunk}");
        }
    }

    #[test]
    fn invalid_utf8_is_a_typed_error_not_a_panic() {
        // A bare continuation byte, an invalid leading byte, and a bad
        // second byte — each must yield InvalidUtf8 at the right offset,
        // under every read granularity.
        let cases: &[(&[u8], usize)] = &[
            (b"<doc>\x80</doc>", 5),         // bare continuation byte
            (b"<doc>\xFF</doc>", 5),         // invalid leading byte
            (b"<doc>\xC3\x28</doc>", 5),     // bad continuation
            (b"<doc>\xC0\xAF</doc>", 5),     // overlong '/'
            (b"<doc>\xE0\x80\xAF</doc>", 5), // overlong 3-byte
            (b"<doc>\xED\xA0\x80</doc>", 5), // surrogate half
            (b"<doc>\xF4\x90\x80\x80x", 5),  // scalar above U+10FFFF
        ];
        for &(data, want_offset) in cases {
            for chunk in 1..=4 {
                let mut ab = Alphabet::new();
                let mut tok = ByteTokenizer::new(SplitReader::new(data, chunk), &mut ab);
                // first event: the <doc> call
                assert!(tok.next().unwrap().is_ok());
                let err = loop {
                    match tok.next().expect("error must surface") {
                        Ok(_) => continue,
                        Err(e) => break e,
                    }
                };
                match err {
                    SaxError::InvalidUtf8 { offset } => {
                        assert_eq!(offset, want_offset, "input {data:?}, chunk {chunk}")
                    }
                    other => panic!("input {data:?}: expected InvalidUtf8, got {other:?}"),
                }
                // fused after the error
                assert!(tok.next().is_none());
            }
        }
    }

    #[test]
    fn truncated_multibyte_at_eof_is_a_typed_error() {
        // The stream ends inside a 3-byte sequence; whichever read boundary
        // the split lands on, the error is TruncatedUtf8, never a panic and
        // never a silently dropped character.
        let data: &[u8] = b"<doc>\xE2\x89"; // first two bytes of '≤'
        for chunk in 1..=4 {
            let mut ab = Alphabet::new();
            let mut tok = ByteTokenizer::new(SplitReader::new(data, chunk), &mut ab);
            assert!(tok.next().unwrap().is_ok());
            let err = tok.next().expect("error must surface").unwrap_err();
            assert!(
                matches!(err, SaxError::TruncatedUtf8 { offset: 5 }),
                "chunk {chunk}: got {err:?}"
            );
            assert!(tok.next().is_none());
        }
    }

    #[test]
    fn io_errors_surface_as_typed_errors() {
        struct FailingReader(usize);
        impl io::Read for FailingReader {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::new(io::ErrorKind::ConnectionReset, "boom"));
                }
                self.0 -= 1;
                buf[0] = b'x';
                Ok(1)
            }
        }
        let mut ab = Alphabet::new();
        let mut tok = ByteTokenizer::new(FailingReader(3), &mut ab);
        let err = tok.next().expect("error must surface").unwrap_err();
        assert!(matches!(err, SaxError::Io(_)), "got {err:?}");
        assert!(tok.next().is_none());
    }

    #[test]
    fn interrupted_reads_are_retried() {
        struct InterruptingReader {
            data: &'static [u8],
            pos: usize,
            interrupt_next: bool,
        }
        impl io::Read for InterruptingReader {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.interrupt_next {
                    self.interrupt_next = false;
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
                }
                self.interrupt_next = true;
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut ab = Alphabet::new();
        let events: Result<Vec<_>, _> = ByteTokenizer::new(
            InterruptingReader {
                data: b"<a>x</a>",
                pos: 0,
                interrupt_next: true,
            },
            &mut ab,
        )
        .collect();
        assert_eq!(events.unwrap().len(), 3);
    }

    #[test]
    fn utf8_chars_decodes_exactly_like_str_chars() {
        // Every scalar-value category, split at every granularity.
        let text = "A£ह𐍈\u{10FFFF}\u{D7FF}\u{E000}ß\u{7F}\u{80}";
        let expect: Vec<char> = text.chars().collect();
        for chunk in 1..=5 {
            let got: Vec<char> = Utf8Chars::new(SplitReader::new(text.as_bytes(), chunk))
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(got, expect, "chunk {chunk}");
        }
    }

    #[test]
    fn frozen_tokenizer_matches_interning_on_known_alphabets() {
        // Build the alphabet once with the interning front end, then lex the
        // same document (at every read granularity) with the frozen one: the
        // event streams must be identical and the alphabet untouched.
        let text = "<doc><sec n=\"1\">héllo wörld</sec><sec/><![CDATA[x > y]]></doc>";
        let mut ab = Alphabet::new();
        let interned: Vec<_> = ByteTokenizer::new(text.as_bytes(), &mut ab)
            .collect::<Result<_, _>>()
            .unwrap();
        let before = ab.clone();
        for chunk in 1..=5 {
            let frozen: Vec<_> =
                FrozenByteTokenizer::new(SplitReader::new(text.as_bytes(), chunk), &ab)
                    .collect::<Result<_, _>>()
                    .unwrap();
            assert_eq!(frozen, interned, "chunk size {chunk}");
        }
        assert_eq!(ab, before);
    }

    #[test]
    fn frozen_tokenizer_rejects_unknown_names_everywhere() {
        let ab = {
            let mut ab = Alphabet::new();
            tokenize("<doc>t</doc>", &mut ab).unwrap();
            ab
        };
        // Unknown tag, unknown text token, unknown CDATA token: each is a
        // typed UnknownSymbol, the iterator fuses, and nothing past the
        // error is yielded.
        for (input, unknown) in [
            ("<doc><bad>t</bad></doc>", "bad"),
            ("<doc>mystery</doc>", "mystery"),
            ("<doc><![CDATA[mystery]]></doc>", "mystery"),
        ] {
            let mut tok = FrozenByteTokenizer::new(input.as_bytes(), &ab);
            assert!(tok.next().unwrap().is_ok(), "input {input}: <doc> call");
            let err = tok.next().unwrap().unwrap_err();
            assert!(
                matches!(
                    err,
                    SaxError::Syntax(NestedWordError::UnknownSymbol { ref name }) if name == unknown
                ),
                "input {input}: got {err:?}"
            );
            assert!(tok.next().is_none(), "input {input}: fused after error");
        }
        assert_eq!(ab.len(), 2);
    }

    #[test]
    fn sax_error_display_and_source() {
        let e = SaxError::InvalidUtf8 { offset: 12 };
        assert!(e.to_string().contains("byte 12"));
        let e = SaxError::TruncatedUtf8 { offset: 3 };
        assert!(e.to_string().contains("byte 3"));
        let e = SaxError::from(NestedWordError::NotWellMatched);
        assert!(std::error::Error::source(&e).is_some());
        let e = SaxError::Io(io::Error::other("x"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
