//! A small query-combinator layer over the document-query zoo: compose
//! [`queries`] primitives with boolean connectives and
//! lower the result to one deterministic NWA.
//!
//! A [`Query`] is a syntax tree — leaves are the zoo constructors
//! ([`Query::contains`], [`Query::in_order`], [`Query::depth_le`],
//! [`Query::open_depth_le`], [`Query::within`]), inner nodes are
//! [`and`](Query::and) / [`or`](Query::or) / [`not`](Query::not) — and
//! [`Query::lower`] compiles it against a concrete alphabet size by lowering
//! each leaf and folding the connectives through the `automata-core`
//! [`BooleanOps`] product and complement constructions. Determinism is
//! preserved at every node (products of deterministic NWAs are
//! deterministic; complement just flips acceptance), so the result feeds
//! straight into [`Compile`](automata_core::Compile) or a
//! `query::compile_set` multi-query set.
//!
//! The law pinned by `tests/multiquery.rs`: lowering a composed query is
//! language-equivalent to composing the lowered parts — `lower(a ∧ b) ≡
//! lower(a) ∩ lower(b)` and likewise for `∨` and `¬` — so callers may
//! compose at whichever layer is convenient.

use automata_core::BooleanOps;
use nested_words::Symbol;
use nwa::automaton::Nwa;

use crate::queries;

/// A composable document query: zoo primitives under boolean connectives,
/// lowered to one deterministic NWA by [`Query::lower`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Some element with this tag occurs (as a call position) —
    /// [`queries::contains_tag_nwa`].
    Contains(Symbol),
    /// These labels occur in document order — a flat
    /// [`queries::patterns_in_order_nwa`] query over the linear structure.
    InOrder(Vec<Symbol>),
    /// The matched nesting depth is at most this bound —
    /// [`queries::depth_at_most_nwa`].
    DepthLe(usize),
    /// Never more than this many simultaneously open elements —
    /// [`queries::open_depth_at_most_nwa`].
    OpenDepthLe(usize),
    /// An `inner` event occurs strictly inside an open `outer` element —
    /// [`queries::within_nwa`].
    Within {
        /// The enclosing element's tag.
        outer: Symbol,
        /// The enclosed call or text label.
        inner: Symbol,
    },
    /// Both operands hold.
    And(Box<Query>, Box<Query>),
    /// At least one operand holds.
    Or(Box<Query>, Box<Query>),
    /// The operand does not hold.
    Not(Box<Query>),
}

impl Query {
    /// Leaf: some element with tag `tag` occurs.
    pub fn contains(tag: Symbol) -> Query {
        Query::Contains(tag)
    }

    /// Leaf: `labels` occur in document order.
    pub fn in_order(labels: impl Into<Vec<Symbol>>) -> Query {
        Query::InOrder(labels.into())
    }

    /// Leaf: matched nesting depth at most `d`.
    pub fn depth_le(d: usize) -> Query {
        Query::DepthLe(d)
    }

    /// Leaf: at most `d` simultaneously open elements.
    pub fn open_depth_le(d: usize) -> Query {
        Query::OpenDepthLe(d)
    }

    /// Leaf: an `inner` event strictly inside an open `outer` element.
    pub fn within(outer: Symbol, inner: Symbol) -> Query {
        Query::Within { outer, inner }
    }

    /// Conjunction: both `self` and `other` hold.
    pub fn and(self, other: Query) -> Query {
        Query::And(Box::new(self), Box::new(other))
    }

    /// Disjunction: `self` or `other` holds.
    pub fn or(self, other: Query) -> Query {
        Query::Or(Box::new(self), Box::new(other))
    }

    /// Negation: `self` does not hold.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Query {
        Query::Not(Box::new(self))
    }

    /// Lowers the query tree to one deterministic NWA over a `sigma`-symbol
    /// alphabet: zoo constructors at the leaves, [`BooleanOps`] product /
    /// complement at the connectives.
    ///
    /// State counts multiply through [`And`](Query::And) /
    /// [`Or`](Query::Or) nodes (the product construction), so deeply
    /// composed queries are best compiled once and reused — or handed as
    /// *separate* members to a `query::compile_set` multi-query set, whose
    /// backend heuristic keeps oversized products off the hot path.
    pub fn lower(&self, sigma: usize) -> Nwa {
        match self {
            Query::Contains(tag) => queries::contains_tag_nwa(*tag, sigma),
            Query::InOrder(labels) => queries::patterns_in_order_nwa(labels, sigma),
            Query::DepthLe(d) => queries::depth_at_most_nwa(*d, sigma),
            Query::OpenDepthLe(d) => queries::open_depth_at_most_nwa(*d, sigma),
            Query::Within { outer, inner } => queries::within_nwa(*outer, *inner, sigma),
            Query::And(a, b) => a.lower(sigma).intersect(&b.lower(sigma)),
            Query::Or(a, b) => a.lower(sigma).union(&b.lower(sigma)),
            Query::Not(a) => a.lower(sigma).complement(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sax::parse_document;
    use nested_words::Alphabet;

    #[test]
    fn composed_queries_lower_and_decide() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<doc><sec><fig>t</fig></sec></doc>", &mut ab).unwrap();
        let sec = ab.lookup("sec").unwrap();
        let fig = ab.lookup("fig").unwrap();
        let t = ab.lookup("t").unwrap();
        let sigma = ab.len();

        // "a fig inside a sec, and the document is not deeper than 3"
        let q = Query::within(sec, fig).and(Query::depth_le(3));
        assert!(q.lower(sigma).accepts(&doc));
        assert!(!q.clone().not().lower(sigma).accepts(&doc));
        // "a fig inside a sec, but nothing nests deeper than 2" fails: the
        // chain doc > sec > fig > t has three matched edges
        assert!(!Query::within(sec, fig)
            .and(Query::depth_le(2))
            .lower(sigma)
            .accepts(&doc));
        // or-composition with an unsatisfied branch still accepts
        assert!(Query::contains(t) // t is text, never a tag
            .or(Query::in_order([sec, fig]))
            .lower(sigma)
            .accepts(&doc));
    }

    #[test]
    fn lowering_commutes_with_boolean_composition() {
        let mut ab = Alphabet::new();
        let docs = [
            parse_document("<doc><sec>t</sec></doc>", &mut ab).unwrap(),
            parse_document("<doc><fig>t</fig><sec/></doc>", &mut ab).unwrap(),
            parse_document("<sec><sec><sec>t</sec></sec></sec>", &mut ab).unwrap(),
        ];
        let sec = ab.lookup("sec").unwrap();
        let fig = ab.lookup("fig").unwrap();
        let sigma = ab.len();
        let a = Query::contains(sec);
        let b = Query::within(sec, fig).or(Query::depth_le(1));
        let composed = a.clone().and(b.clone()).or(b.clone().not()).lower(sigma);
        let by_hand = a
            .lower(sigma)
            .intersect(&b.lower(sigma))
            .union(&b.lower(sigma).complement());
        for (i, doc) in docs.iter().enumerate() {
            assert_eq!(composed.accepts(doc), by_hand.accepts(doc), "doc {i}");
        }
    }
}
