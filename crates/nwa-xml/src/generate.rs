//! Synthetic document generator for the streaming experiments (E14, E15).

use nested_words::rng::Prng;
use nested_words::{Alphabet, NestedWord, Symbol, TaggedSymbol};

/// Configuration of the synthetic document generator.
#[derive(Debug, Clone, Copy)]
pub struct DocumentConfig {
    /// Approximate number of SAX events (positions in the nested word).
    pub events: usize,
    /// Maximum element nesting depth.
    pub max_depth: usize,
    /// Number of distinct element tags.
    pub tags: usize,
    /// Number of distinct text tokens.
    pub words: usize,
}

impl Default for DocumentConfig {
    fn default() -> Self {
        DocumentConfig {
            events: 1_000,
            max_depth: 16,
            tags: 8,
            words: 16,
        }
    }
}

/// Generates a well-formed synthetic document as `(alphabet, nested word)`:
/// tags come first in the alphabet (`t0`, `t1`, …), then text tokens
/// (`w0`, `w1`, …).
pub fn generate_document(config: DocumentConfig, seed: u64) -> (Alphabet, NestedWord) {
    let mut names: Vec<String> = (0..config.tags).map(|i| format!("t{i}")).collect();
    names.extend((0..config.words).map(|i| format!("w{i}")));
    let alphabet = Alphabet::from_names(names);
    let mut rng = Prng::new(seed);
    let mut tagged = Vec::with_capacity(config.events + config.max_depth);
    let mut stack: Vec<Symbol> = Vec::new();
    for i in 0..config.events {
        let remaining = config.events - i;
        if stack.len() >= remaining {
            let t = stack.pop().expect("non-empty stack");
            tagged.push(TaggedSymbol::Return(t));
            continue;
        }
        let roll: f64 = rng.f64();
        if roll < 0.3 && stack.len() < config.max_depth && remaining > stack.len() + 1 {
            let t = Symbol(rng.below(config.tags) as u16);
            stack.push(t);
            tagged.push(TaggedSymbol::Call(t));
        } else if roll < 0.5 && !stack.is_empty() {
            let t = stack.pop().expect("non-empty stack");
            tagged.push(TaggedSymbol::Return(t));
        } else {
            let w = Symbol((config.tags + rng.below(config.words)) as u16);
            tagged.push(TaggedSymbol::Internal(w));
        }
    }
    while let Some(t) = stack.pop() {
        tagged.push(TaggedSymbol::Return(t));
    }
    (alphabet, NestedWord::from_tagged(&tagged))
}

/// Generates a deliberately deep document: a single chain of nested elements
/// of the given depth with one text token inside each element.
pub fn generate_deep_document(depth: usize, tags: usize) -> (Alphabet, NestedWord) {
    let mut names: Vec<String> = (0..tags).map(|i| format!("t{i}")).collect();
    names.push("text".to_string());
    let alphabet = Alphabet::from_names(names);
    let text = Symbol(tags as u16);
    let mut tagged = Vec::with_capacity(3 * depth);
    for d in 0..depth {
        tagged.push(TaggedSymbol::Call(Symbol((d % tags) as u16)));
        tagged.push(TaggedSymbol::Internal(text));
    }
    for d in (0..depth).rev() {
        tagged.push(TaggedSymbol::Return(Symbol((d % tags) as u16)));
    }
    (alphabet, NestedWord::from_tagged(&tagged))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_documents_are_well_formed() {
        for seed in 0..10 {
            let (ab, doc) = generate_document(DocumentConfig::default(), seed);
            assert!(doc.is_well_matched(), "seed {seed}");
            assert!(doc.depth() <= 16);
            assert!(doc.len() >= 1_000);
            assert_eq!(ab.len(), 8 + 16);
        }
    }

    #[test]
    fn deep_documents_have_requested_depth() {
        let (_, doc) = generate_deep_document(100, 4);
        assert_eq!(doc.depth(), 100);
        assert!(doc.is_rooted());
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, d1) = generate_document(DocumentConfig::default(), 3);
        let (_, d2) = generate_document(DocumentConfig::default(), 3);
        assert_eq!(d1, d2);
    }
}
