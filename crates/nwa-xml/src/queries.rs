//! Document queries compiled to deterministic nested word automata and
//! evaluated in a streaming fashion.
//!
//! Two query families from the paper's motivation (§1):
//!
//! * **patterns in document order** — `Σ* p₁ Σ* … pₙ Σ*` over the linear
//!   order of the document; the query that word automata handle with
//!   linearly many states while bottom-up tree automata need exponentially
//!   many (experiment E14);
//! * **structural queries** — "some element with tag `t` occurs at depth
//!   ≤ d" / "the document nests deeper than d", which genuinely use the
//!   hierarchical structure.

use crate::sax::{FrozenByteTokenizer, SaxError};
use automata_core::{query, MultiAcceptor, QuerySetRun, StreamAcceptor, StreamRun};
use nested_words::{Alphabet, NestedWord, NestedWordError, Symbol, TaggedSymbol};
use nwa::automaton::Nwa;
use nwa::flat::from_tagged_dfa;
use std::io;
use word_automata::{Dfa, Regex};

/// Compiles the "patterns appear in this order" query (over document symbol
/// labels, ignoring position kinds) into a flat deterministic NWA via the
/// tagged-alphabet regex Σ̂*...; `sigma` is the document alphabet size.
pub fn patterns_in_order_nwa(patterns: &[Symbol], sigma: usize) -> Nwa {
    // Over Σ̂ a document label `s` can occur as a call, internal or return, so
    // each pattern symbol becomes an alternation of its three tagged copies.
    let tagged_choice = |s: Symbol| {
        Regex::Symbol(TaggedSymbol::Call(s).tagged_index(sigma))
            .union(Regex::Symbol(TaggedSymbol::Internal(s).tagged_index(sigma)))
            .union(Regex::Symbol(TaggedSymbol::Return(s).tagged_index(sigma)))
    };
    let mut r = Regex::any_star();
    for &p in patterns {
        r = r.concat(tagged_choice(p)).concat(Regex::any_star());
    }
    let dfa: Dfa = r.to_min_dfa(3 * sigma);
    from_tagged_dfa(&dfa, sigma)
}

/// Builds a deterministic NWA accepting documents whose nesting depth —
/// [`NestedWord::depth`], the matched-nesting definition of §2.1 — is at
/// most `d`. Pending calls and pending returns contribute nothing, exactly
/// as in [`nested_words::MatchingRelation::depth`]; for the "at most `d`
/// simultaneously open elements" reading (which bounds the streaming stack),
/// use [`open_depth_at_most_nwa`].
///
/// The automaton tracks, per open element, the longest chain of *closed*
/// matched edges nested inside it so far (capped at `d + 1`): a return
/// closing an element with chain value `m` certifies a chain of `m + 1`
/// matched edges. The hierarchical edge carries the enclosing element's
/// accumulator, and top level is a dedicated state `⊥`. Pending vs matched
/// returns are discriminated by the *linear* state, not the hierarchical
/// one: the run is in `⊥` exactly when no element is open (calls always
/// move to an accumulator state, matched returns with `h = ⊥` move back to
/// `⊥`), so a return read in `⊥` is necessarily pending and closes
/// nothing, while a matched return seeing `h = ⊥` is a top-level close.
pub fn depth_at_most_nwa(d: usize, sigma: usize) -> Nwa {
    // states: 0 = ⊥ (top level, initial), 1..=d+1 = accumulator 0..=d,
    // d+2 = dead
    let bottom = 0usize;
    let acc = |m: usize| m + 1;
    let dead = d + 2;
    let mut m = Nwa::new(d + 3, sigma, bottom);
    for q in 0..dead {
        m.set_accepting(q, true);
    }
    m.set_all_transitions_to(dead, dead);
    for a in 0..sigma {
        let a = Symbol(a as u16);
        for q in 0..dead {
            m.set_internal(q, a, q);
            // opening an element starts a fresh chain accumulator and saves
            // the enclosing context on the hierarchical edge
            m.set_call(q, a, acc(0), q);
            for h in 0..d + 3 {
                let target = if h == dead {
                    dead
                } else if q == bottom {
                    // a return seen at top level is pending: no matched edge
                    // closes, the depth is unchanged
                    bottom
                } else {
                    // closing an element with accumulator q-1 certifies a
                    // chain of q matched edges; the enclosing accumulator
                    // (from the hierarchical edge) absorbs it
                    let chain = q; // q = acc(q - 1), chain length = q
                    if chain > d {
                        dead
                    } else if h == bottom {
                        bottom
                    } else {
                        acc(chain.max(h - 1))
                    }
                };
                m.set_return(q, h, a, target);
            }
        }
    }
    m
}

/// Builds a deterministic NWA accepting documents that never have more than
/// `d` simultaneously open elements (calls without a return yet, pending
/// ones included). This bounds the stack a streaming run needs; it differs
/// from [`depth_at_most_nwa`] on ill-formed documents, where open elements
/// may never close and then do not count towards the matched nesting depth.
pub fn open_depth_at_most_nwa(d: usize, sigma: usize) -> Nwa {
    // states 0..=d = number of currently open elements, d+1 = dead
    let dead = d + 1;
    let mut m = Nwa::new(d + 2, sigma, 0);
    for q in 0..=d {
        m.set_accepting(q, true);
    }
    m.set_all_transitions_to(dead, dead);
    for a in 0..sigma {
        let a = Symbol(a as u16);
        for q in 0..=d {
            m.set_internal(q, a, q);
            m.set_call(q, a, if q < d { q + 1 } else { dead }, q);
            for h in 0..d + 2 {
                // a matched return pops back to the open count recorded on
                // the hierarchical edge; a pending return carries the
                // initial state 0, correctly resetting to "nothing open"
                let target = if h <= d { h } else { dead };
                m.set_return(q, h, a, target);
            }
        }
    }
    m
}

/// Builds a deterministic NWA accepting documents that contain at least one
/// element with tag `tag` (as a call position).
pub fn contains_tag_nwa(tag: Symbol, sigma: usize) -> Nwa {
    let mut m = Nwa::new(2, sigma, 0);
    m.set_accepting(1, true);
    for a in 0..sigma {
        let a_sym = Symbol(a as u16);
        for q in 0..2usize {
            let hit = q == 1 || a_sym == tag;
            m.set_internal(q, a_sym, q);
            m.set_call(q, a_sym, usize::from(hit), 0);
            for h in 0..2 {
                m.set_return(q, h, a_sym, q);
            }
        }
    }
    m
}

/// Builds a deterministic NWA accepting documents with an `inner`-labelled
/// element or text event strictly inside an open `outer` element — the
/// XPath-ish `//outer//inner` containment query, and the query family that
/// genuinely needs the hierarchical structure (a word automaton over the
/// linear order cannot tell "inside" from "after").
///
/// "Inside an open `outer`" is tracked through the matching relation: the
/// context (outer open or not) is pushed on every call's hierarchical edge
/// and restored by the matching return. A *pending* return matches no call,
/// so it joins the initial state's base (§3.1) and resets the tracker to top
/// level, exactly like the other structural queries in this zoo. `inner`
/// occurrences counted are calls and internals; a return labelled `inner`
/// closes an element rather than introducing one and does not hit.
pub fn within_nwa(outer: Symbol, inner: Symbol, sigma: usize) -> Nwa {
    // states: 0 = no outer open (initial), 1 = inside an open outer,
    // 2 = hit (accepting sink)
    let mut m = Nwa::new(3, sigma, 0);
    m.set_accepting(2, true);
    for a in 0..sigma {
        let a_sym = Symbol(a as u16);
        // 0: only an outer call moves inside; inner events here do not count
        m.set_internal(0, a_sym, 0);
        m.set_call(0, a_sym, usize::from(a_sym == outer), 0);
        // 1: any inner-labelled call or internal is a hit; otherwise stay
        // inside (nested outers included), saving the context on the edge
        m.set_internal(1, a_sym, if a_sym == inner { 2 } else { 1 });
        m.set_call(1, a_sym, if a_sym == inner { 2 } else { 1 }, 1);
        m.set_internal(2, a_sym, 2);
        m.set_call(2, a_sym, 2, 2);
        for h in 0..3 {
            // closing an element restores the context recorded at its call;
            // a hit is permanent whatever closes
            m.set_return(0, h, a_sym, h);
            m.set_return(1, h, a_sym, h);
            m.set_return(2, h, a_sym, 2);
        }
    }
    m
}

/// Result of a streaming evaluation (re-exported from
/// `automata_core::stream`, where the generic streaming verbs live).
pub type StreamingOutcome = automata_core::StreamOutcome;

/// Runs a deterministic NWA over a materialized document in streaming
/// fashion (one pass, memory proportional to depth) and reports the
/// outcome. Thin wrapper over the generic
/// [`automata_core::query::run_stream`], which accepts any
/// [`StreamAcceptor`] and any event source.
pub fn run_streaming(nwa: &Nwa, document: &NestedWord) -> StreamingOutcome {
    query::run_stream(
        nwa,
        (0..document.len()).map(|i| TaggedSymbol::new(document.kind(i), document.symbol(i))),
    )
}

/// Number of tokenized events buffered between the scanner and the
/// automaton per [`StreamRun::step_slice`] call in
/// [`run_streaming_reader`]. Large enough to amortize the per-slice
/// bookkeeping of the compiled engines' register-resident loops, small
/// enough that the buffer (8 bytes per event) stays cache-resident; paired
/// with the reader-side chunk size [`crate::scan::SCAN_CHUNK`].
pub const EVENT_SLICE: usize = 4 * 1024;

/// Runs a streaming acceptor directly over the SAX events of an XML-ish
/// byte stream — any [`io::Read`]: a file, a socket, a decompressor —
/// without ever materializing a string, a tagged word or a nested word:
/// the bytes-in → verdict-out single-pass pipeline of §1. The bytes are
/// swept in [`crate::scan::SCAN_CHUNK`]-sized chunks by the bulk
/// structural scanner ([`FrozenByteTokenizer`]), and the resulting events
/// are buffered into [`EVENT_SLICE`]-long runs handed to the acceptor's
/// [`StreamRun::step_slice`] bulk entry; memory is the scanner's chunk
/// window, the event buffer, and a stack proportional to the nesting
/// depth.
///
/// Every tag and text symbol of the stream must already be interned in
/// `alphabet`, and the automaton must be compiled against that alphabet
/// (the usual flow: tokenize once, compile the query with
/// `sigma = alphabet.len()`, then stream). A name not in `alphabet` is
/// reported as [`NestedWordError::UnknownSymbol`] (wrapped in
/// [`SaxError::Syntax`]) rather than silently interned past the automaton's
/// alphabet, where it would index out of the transition tables; `alphabet`
/// itself is never mutated, so the guard holds across repeated calls with
/// the same query. Invalid or truncated UTF-8 and I/O failures surface as
/// the corresponding typed [`SaxError`]s.
pub fn run_streaming_reader<A: StreamAcceptor, R: io::Read>(
    a: &A,
    reader: R,
    alphabet: &Alphabet,
) -> Result<StreamingOutcome, SaxError> {
    let mut run = a.start();
    let mut tokenizer = FrozenByteTokenizer::new(reader, alphabet);
    let mut buffer: Vec<TaggedSymbol> = Vec::with_capacity(EVENT_SLICE);
    loop {
        tokenizer.fill(&mut buffer, EVENT_SLICE)?;
        if buffer.is_empty() {
            break;
        }
        run.step_slice(&buffer);
        buffer.clear();
    }
    Ok(StreamingOutcome {
        accepted: run.is_accepting(),
        events: run.steps(),
        peak_memory: run.peak_memory(),
    })
}

/// The multi-query spelling of [`run_streaming_reader`]: one tokenization
/// pass over the byte stream decides **all** member queries of a compiled
/// set ([`MultiAcceptor`], e.g. `nwa::QuerySet`), returning one
/// [`StreamingOutcome`] per query in query order.
///
/// This is the point of the multi-query subsystem: tokenization dominates
/// the bytes-to-verdict pipeline, so M queries answered off one scan cost
/// barely more than one — where M sequential [`run_streaming_reader`] calls
/// would re-scan (and re-validate) the same bytes M times. Alphabet
/// discipline is identical to the single-query path: every name must already
/// be interned in `alphabet`, unknown names surface as
/// [`NestedWordError::UnknownSymbol`] without mutating `alphabet`, and the
/// set must be compiled with `sigma = alphabet.len()`.
pub fn run_multi_streaming_reader<S: MultiAcceptor, R: io::Read>(
    set: &S,
    reader: R,
    alphabet: &Alphabet,
) -> Result<Vec<StreamingOutcome>, SaxError> {
    let mut run = set.start_set();
    let mut tokenizer = FrozenByteTokenizer::new(reader, alphabet);
    let mut buffer: Vec<TaggedSymbol> = Vec::with_capacity(EVENT_SLICE);
    loop {
        tokenizer.fill(&mut buffer, EVENT_SLICE)?;
        if buffer.is_empty() {
            break;
        }
        run.step_slice(&buffer);
        buffer.clear();
    }
    Ok(run.outcomes())
}

/// [`run_streaming_reader`] over an in-memory text: the same byte-level
/// pipeline driven from `text.as_bytes()`. Since the input is already valid
/// UTF-8 held in memory, the only reachable failures are syntactic, so they
/// come back as plain [`NestedWordError`]s.
pub fn run_streaming_text<A: StreamAcceptor>(
    a: &A,
    text: &str,
    alphabet: &Alphabet,
) -> Result<StreamingOutcome, NestedWordError> {
    run_streaming_reader(a, text.as_bytes(), alphabet).map_err(|e| match e {
        SaxError::Syntax(e) => e,
        // Unreachable for an in-memory &str source, but mapped rather than
        // panicked on out of caution.
        other => NestedWordError::Parse {
            offset: 0,
            message: other.to_string(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_deep_document, generate_document, DocumentConfig};
    use crate::sax::parse_document;
    use nested_words::Alphabet;

    #[test]
    fn patterns_in_order_on_documents() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<doc><a>x</a><b>y</b></doc>", &mut ab).unwrap();
        let x = ab.lookup("x").unwrap();
        let y = ab.lookup("y").unwrap();
        let sigma = ab.len();
        let q_xy = patterns_in_order_nwa(&[x, y], sigma);
        let q_yx = patterns_in_order_nwa(&[y, x], sigma);
        assert!(q_xy.accepts(&doc));
        assert!(!q_yx.accepts(&doc));
        assert!(q_xy.is_flat());
    }

    #[test]
    fn depth_query() {
        let mut ab = Alphabet::new();
        let shallow = parse_document("<a><b>t</b></a>", &mut ab).unwrap();
        let deep = parse_document("<a><b><a><b>t</b></a></b></a>", &mut ab).unwrap();
        let sigma = ab.len();
        let q = depth_at_most_nwa(2, sigma);
        assert!(q.accepts(&shallow));
        assert!(!q.accepts(&deep));
    }

    #[test]
    fn contains_tag_query() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<doc><sec>t</sec></doc>", &mut ab).unwrap();
        let sec = ab.lookup("sec").unwrap();
        let doc_tag = ab.lookup("doc").unwrap();
        let t = ab.lookup("t").unwrap();
        let sigma = ab.len();
        assert!(contains_tag_nwa(sec, sigma).accepts(&doc));
        assert!(contains_tag_nwa(doc_tag, sigma).accepts(&doc));
        // `t` occurs only as text, not as an element tag
        assert!(!contains_tag_nwa(t, sigma).accepts(&doc));
    }

    #[test]
    fn depth_query_agrees_with_nested_word_depth() {
        // Regression for the matched-nesting semantics: this fragment has
        // depth() == 1 (one matched edge), but the old automaton counted the
        // four pending calls as depth and rejected it at d = 3.
        let mut ab = Alphabet::new();
        let doc = parse_document("<a><a><a></x><a><a>", &mut ab).unwrap();
        assert_eq!(doc.depth(), 1);
        let sigma = ab.len();
        for d in 0..4 {
            assert_eq!(
                depth_at_most_nwa(d, sigma).accepts(&doc),
                doc.depth() <= d,
                "d = {d}"
            );
        }

        // Randomized pinning: the automaton and NestedWord::depth() must
        // agree on arbitrary documents, pending edges included.
        use nested_words::generate::{random_nested_word, NestedWordConfig};
        let ab = Alphabet::with_size(3);
        let cfg = NestedWordConfig {
            len: 40,
            allow_pending: true,
            ..Default::default()
        };
        for seed in 0..100u64 {
            let w = random_nested_word(&ab, cfg, seed);
            for d in 0..5 {
                assert_eq!(
                    depth_at_most_nwa(d, ab.len()).accepts(&w),
                    w.depth() <= d,
                    "seed {seed}, d = {d}, word {:?}",
                    w.to_tagged()
                );
            }
        }
    }

    #[test]
    fn open_depth_query_counts_pending_calls() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<a><a><a></x><a><a>", &mut ab).unwrap();
        let sigma = ab.len();
        // four elements are simultaneously open at the end
        assert!(!open_depth_at_most_nwa(3, sigma).accepts(&doc));
        assert!(open_depth_at_most_nwa(4, sigma).accepts(&doc));
        // on well-matched documents the two notions coincide
        let well = parse_document("<a><b><c></c></b></a>", &mut ab).unwrap();
        let sigma = ab.len();
        for d in 0..5 {
            assert_eq!(
                depth_at_most_nwa(d, sigma).accepts(&well),
                open_depth_at_most_nwa(d, sigma).accepts(&well),
                "d = {d}"
            );
        }
    }

    #[test]
    fn within_query_needs_the_hierarchy() {
        let mut ab = Alphabet::new();
        let inside = parse_document("<o><x><i>t</i></x></o>", &mut ab).unwrap();
        let after = parse_document("<o></o><i>t</i>", &mut ab).unwrap();
        let elsewhere = parse_document("<x><i>t</i></x>", &mut ab).unwrap();
        let o = ab.lookup("o").unwrap();
        let i = ab.lookup("i").unwrap();
        let t = ab.lookup("t").unwrap();
        let sigma = ab.len();
        let q = within_nwa(o, i, sigma);
        assert!(q.accepts(&inside));
        // linearly "o ... i" but the o element is already closed
        assert!(!q.accepts(&after));
        assert!(!q.accepts(&elsewhere));
        // text events count as inner occurrences too
        assert!(within_nwa(o, t, sigma).accepts(&inside));
        // a pending return closing nothing resets to top level
        let pending = parse_document("<o></x><i>t</i>", &mut ab).unwrap();
        assert!(!within_nwa(o, i, ab.len()).accepts(&pending));
    }

    #[test]
    fn multi_streaming_reader_matches_per_query_runs() {
        use nwa::QuerySet;

        let text = r#"<doc><sec n="1">hello</sec><sec n="2">world</sec></doc>"#;
        let mut ab = Alphabet::new();
        crate::sax::tokenize(text, &mut ab).unwrap();
        let sec = ab.lookup("sec").unwrap();
        let doc_tag = ab.lookup("doc").unwrap();
        let hello = ab.lookup("hello").unwrap();
        let sigma = ab.len();
        let queries = [
            contains_tag_nwa(sec, sigma),
            contains_tag_nwa(hello, sigma), // text only, never a tag: rejects
            within_nwa(doc_tag, hello, sigma),
            depth_at_most_nwa(1, sigma),
        ];
        let set = QuerySet::compile(&queries);
        let outcomes = run_multi_streaming_reader(&set, text.as_bytes(), &ab).unwrap();
        assert_eq!(outcomes.len(), queries.len());
        for (q, outcome) in queries.iter().zip(&outcomes) {
            let solo = run_streaming_text(q, text, &ab).unwrap();
            assert_eq!(*outcome, solo);
        }
        assert_eq!(
            outcomes.iter().map(|o| o.accepted).collect::<Vec<_>>(),
            [true, false, true, false]
        );

        // Unknown names are rejected up front without touching the alphabet.
        let err =
            run_multi_streaming_reader(&set, "<doc><intruder/></doc>".as_bytes(), &ab).unwrap_err();
        assert!(matches!(
            err,
            SaxError::Syntax(NestedWordError::UnknownSymbol { ref name }) if name == "intruder"
        ));
        assert_eq!(ab.len(), sigma);
    }

    #[test]
    fn streaming_text_runs_without_materializing() {
        let text = r#"<doc><sec n="1">hello</sec><sec n="2">world</sec></doc>"#;
        // First pass builds the alphabet; then compile and stream.
        let mut ab = Alphabet::new();
        crate::sax::tokenize(text, &mut ab).unwrap();
        let sec = ab.lookup("sec").unwrap();
        let q = contains_tag_nwa(sec, ab.len());
        let outcome = run_streaming_text(&q, text, &ab).unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.events, 8);
        assert_eq!(outcome.peak_memory, 2);
        // and it agrees with the materialized path
        let mut ab2 = Alphabet::new();
        let doc = parse_document(text, &mut ab2).unwrap();
        assert_eq!(run_streaming(&q, &doc), outcome);
    }

    #[test]
    fn streaming_reader_runs_bytes_to_verdict() {
        use automata_core::Compile;

        /// Hands out one byte per read call: every multi-byte boundary is a
        /// split boundary.
        struct OneByteReader<'a>(&'a [u8], usize);
        impl std::io::Read for OneByteReader<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 == self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }

        let text = "<doc><sec>héllo</sec><sec>wörld</sec></doc>";
        let mut ab = Alphabet::new();
        crate::sax::tokenize(text, &mut ab).unwrap();
        let q = contains_tag_nwa(ab.lookup("sec").unwrap(), ab.len());

        let from_text = run_streaming_text(&q, text, &ab).unwrap();
        let from_bytes = run_streaming_reader(&q, OneByteReader(text.as_bytes(), 0), &ab).unwrap();
        assert_eq!(from_bytes, from_text);
        assert!(from_bytes.accepted);

        // The compiled artifact runs the same byte pipeline.
        let compiled = q.compile();
        let from_compiled =
            run_streaming_reader(&compiled, OneByteReader(text.as_bytes(), 0), &ab).unwrap();
        assert_eq!(from_compiled, from_text);

        // Broken bytes surface as typed errors, not panics.
        let err = run_streaming_reader(&q, OneByteReader(b"<doc>\xFF</doc>", 0), &ab).unwrap_err();
        assert!(matches!(err, crate::sax::SaxError::InvalidUtf8 { .. }));
    }

    #[test]
    fn streaming_text_rejects_symbols_outside_the_alphabet() {
        // The query was compiled against an alphabet that lacks "intruder";
        // the streaming run must surface a typed error, not index out of
        // the automaton's tables.
        let mut ab = Alphabet::new();
        crate::sax::tokenize("<doc>t</doc>", &mut ab).unwrap();
        let sigma = ab.len();
        let q = contains_tag_nwa(ab.lookup("doc").unwrap(), sigma);
        let err = run_streaming_text(&q, "<doc><intruder/></doc>", &ab).unwrap_err();
        assert!(matches!(
            err,
            NestedWordError::UnknownSymbol { ref name } if name == "intruder"
        ));
        // The caller's alphabet is untouched, so a repeated call still
        // reports the error instead of letting the now-interned name index
        // past the automaton's tables.
        assert_eq!(ab.len(), sigma);
        assert!(ab.lookup("intruder").is_none());
        let err2 = run_streaming_text(&q, "<doc><intruder/></doc>", &ab).unwrap_err();
        assert!(matches!(err2, NestedWordError::UnknownSymbol { .. }));
    }

    #[test]
    fn streaming_memory_tracks_depth_not_length() {
        let (ab, doc) = generate_document(
            DocumentConfig {
                events: 5_000,
                max_depth: 8,
                ..Default::default()
            },
            1,
        );
        let q = depth_at_most_nwa(8, ab.len());
        let outcome = run_streaming(&q, &doc);
        assert!(outcome.accepted);
        assert!(outcome.events >= 5_000);
        assert!(outcome.peak_memory <= 8);

        let (ab2, deep) = generate_deep_document(200, 4);
        let q2 = contains_tag_nwa(Symbol(2), ab2.len());
        let outcome2 = run_streaming(&q2, &deep);
        assert_eq!(outcome2.peak_memory, 200);
        assert!(outcome2.accepted);
    }
}
