//! Document queries compiled to deterministic nested word automata and
//! evaluated in a streaming fashion.
//!
//! Two query families from the paper's motivation (§1):
//!
//! * **patterns in document order** — `Σ* p₁ Σ* … pₙ Σ*` over the linear
//!   order of the document; the query that word automata handle with
//!   linearly many states while bottom-up tree automata need exponentially
//!   many (experiment E14);
//! * **structural queries** — "some element with tag `t` occurs at depth
//!   ≤ d" / "the document nests deeper than d", which genuinely use the
//!   hierarchical structure.

use nested_words::{NestedWord, Symbol, TaggedSymbol};
use nwa::automaton::{Nwa, StreamingRun};
use nwa::flat::from_tagged_dfa;
use word_automata::{Dfa, Regex};

/// Compiles the "patterns appear in this order" query (over document symbol
/// labels, ignoring position kinds) into a flat deterministic NWA via the
/// tagged-alphabet regex Σ̂*...; `sigma` is the document alphabet size.
pub fn patterns_in_order_nwa(patterns: &[Symbol], sigma: usize) -> Nwa {
    // Over Σ̂ a document label `s` can occur as a call, internal or return, so
    // each pattern symbol becomes an alternation of its three tagged copies.
    let tagged_choice = |s: Symbol| {
        Regex::Symbol(TaggedSymbol::Call(s).tagged_index(sigma))
            .union(Regex::Symbol(TaggedSymbol::Internal(s).tagged_index(sigma)))
            .union(Regex::Symbol(TaggedSymbol::Return(s).tagged_index(sigma)))
    };
    let mut r = Regex::any_star();
    for &p in patterns {
        r = r.concat(tagged_choice(p)).concat(Regex::any_star());
    }
    let dfa: Dfa = r.to_min_dfa(3 * sigma);
    from_tagged_dfa(&dfa, sigma)
}

/// Builds a deterministic NWA accepting documents whose nesting depth is at
/// most `d` (checked on matched calls; pending calls count as open depth).
pub fn depth_at_most_nwa(d: usize, sigma: usize) -> Nwa {
    // states 0..=d = current depth, d+1 = dead
    let dead = d + 1;
    let mut m = Nwa::new(d + 2, sigma, 0);
    for q in 0..=d {
        m.set_accepting(q, true);
    }
    m.set_all_transitions_to(dead, dead);
    for a in 0..sigma {
        let a = Symbol(a as u16);
        for q in 0..=d {
            m.set_internal(q, a, q);
            m.set_call(q, a, if q < d { q + 1 } else { dead }, q);
            for h in 0..d + 2 {
                // a matched return pops back to the depth recorded on the
                // hierarchical edge; a pending return keeps the depth
                let target = if h <= d { h } else { dead };
                m.set_return(q, h, a, target);
            }
        }
    }
    m
}

/// Builds a deterministic NWA accepting documents that contain at least one
/// element with tag `tag` (as a call position).
pub fn contains_tag_nwa(tag: Symbol, sigma: usize) -> Nwa {
    let mut m = Nwa::new(2, sigma, 0);
    m.set_accepting(1, true);
    for a in 0..sigma {
        let a_sym = Symbol(a as u16);
        for q in 0..2usize {
            let hit = q == 1 || a_sym == tag;
            m.set_internal(q, a_sym, q);
            m.set_call(q, a_sym, usize::from(hit), 0);
            for h in 0..2 {
                m.set_return(q, h, a_sym, q);
            }
        }
    }
    m
}

/// Result of a streaming evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingOutcome {
    /// Whether the automaton accepted the document.
    pub accepted: bool,
    /// Number of SAX events processed.
    pub events: usize,
    /// Maximum stack height used (equals the document depth reached).
    pub peak_memory: usize,
}

/// Runs a deterministic NWA over a document in streaming fashion (one pass,
/// memory proportional to depth) and reports the outcome.
pub fn run_streaming(nwa: &Nwa, document: &NestedWord) -> StreamingOutcome {
    let mut run = StreamingRun::new(nwa);
    for i in 0..document.len() {
        run.step(TaggedSymbol::new(document.kind(i), document.symbol(i)));
    }
    StreamingOutcome {
        accepted: run.is_accepting(),
        events: run.steps(),
        peak_memory: run.max_stack_height(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_deep_document, generate_document, DocumentConfig};
    use crate::sax::parse_document;
    use nested_words::Alphabet;

    #[test]
    fn patterns_in_order_on_documents() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<doc><a>x</a><b>y</b></doc>", &mut ab).unwrap();
        let x = ab.lookup("x").unwrap();
        let y = ab.lookup("y").unwrap();
        let sigma = ab.len();
        let q_xy = patterns_in_order_nwa(&[x, y], sigma);
        let q_yx = patterns_in_order_nwa(&[y, x], sigma);
        assert!(q_xy.accepts(&doc));
        assert!(!q_yx.accepts(&doc));
        assert!(q_xy.is_flat());
    }

    #[test]
    fn depth_query() {
        let mut ab = Alphabet::new();
        let shallow = parse_document("<a><b>t</b></a>", &mut ab).unwrap();
        let deep = parse_document("<a><b><a><b>t</b></a></b></a>", &mut ab).unwrap();
        let sigma = ab.len();
        let q = depth_at_most_nwa(2, sigma);
        assert!(q.accepts(&shallow));
        assert!(!q.accepts(&deep));
    }

    #[test]
    fn contains_tag_query() {
        let mut ab = Alphabet::new();
        let doc = parse_document("<doc><sec>t</sec></doc>", &mut ab).unwrap();
        let sec = ab.lookup("sec").unwrap();
        let doc_tag = ab.lookup("doc").unwrap();
        let t = ab.lookup("t").unwrap();
        let sigma = ab.len();
        assert!(contains_tag_nwa(sec, sigma).accepts(&doc));
        assert!(contains_tag_nwa(doc_tag, sigma).accepts(&doc));
        // `t` occurs only as text, not as an element tag
        assert!(!contains_tag_nwa(t, sigma).accepts(&doc));
    }

    #[test]
    fn streaming_memory_tracks_depth_not_length() {
        let (ab, doc) = generate_document(
            DocumentConfig {
                events: 5_000,
                max_depth: 8,
                ..Default::default()
            },
            1,
        );
        let q = depth_at_most_nwa(8, ab.len());
        let outcome = run_streaming(&q, &doc);
        assert!(outcome.accepted);
        assert!(outcome.events >= 5_000);
        assert!(outcome.peak_memory <= 8);

        let (ab2, deep) = generate_deep_document(200, 4);
        let q2 = contains_tag_nwa(Symbol(2), ab2.len());
        let outcome2 = run_streaming(&q2, &deep);
        assert_eq!(outcome2.peak_memory, 200);
        assert!(outcome2.accepted);
    }
}
