//! Program-execution traces as nested words: calls and returns of procedures
//! form the hierarchical structure, statements the linear structure (§1 of
//! the paper). The example checks two properties with deterministic NWAs —
//! a stack-depth bound and a "pattern occurs inside procedure p0" query —
//! both through the unified `query`/`Acceptor` facade, with the scoping
//! automaton assembled by the fluent [`NwaBuilder`].
//!
//! Run with `cargo run --example program_traces`.

use nested_words_suite::nested_words::generate::program_trace;
use nested_words_suite::nwa_xml::queries::open_depth_at_most_nwa;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

/// Builds a deterministic NWA accepting traces in which every occurrence of
/// `statement` happens somewhere inside (possibly deep below) a call of
/// `procedure` — a scoping property that needs the hierarchical edges.
fn statement_only_inside(procedure: Symbol, statement: Symbol, sigma: usize) -> Nwa {
    // states: 0 = outside the procedure, 1 = inside, 2 = violated (dead)
    let mut b = NwaBuilder::new(3, sigma, 0)
        .accepting(0)
        .accepting(1)
        .sink(2);
    for a in 0..sigma {
        let a_sym = Symbol(a as u16);
        for q in 0..2usize {
            let inside = q == 1 || a_sym == procedure;
            let violates = a_sym == statement && q == 0;
            b = b
                .internal(q, a_sym, if violates { 2 } else { q })
                // entering a call: the hierarchical edge remembers whether we
                // were inside before, so the matching return restores it
                .call(q, a_sym, usize::from(inside), q);
            for h in 0..3usize {
                b = b.ret(q, h, a_sym, if h < 2 { h } else { 2 });
            }
        }
    }
    b.build()
}

fn main() {
    let procs = 4;
    let statements = 6;
    let (alphabet, trace) = program_trace(procs, statements, 10_000, 12, 2024);
    println!(
        "trace: {} events, call depth {}, well-matched {}",
        trace.len(),
        trace.depth(),
        trace.is_well_matched()
    );

    // Property 1: the call-stack depth never exceeds 12 (open calls count,
    // so the bound holds even for truncated traces with pending calls).
    let depth_q = open_depth_at_most_nwa(12, alphabet.len());
    println!(
        "call depth bounded by 12? {}",
        query::contains(&depth_q, &trace)
    );

    // Property 2: statement s0 only executes inside procedure p0. Evaluated
    // event by event with the streaming runner, whose stack height equals
    // the call depth.
    let p0 = alphabet.lookup("p0").unwrap();
    let s0 = alphabet.lookup("s0").unwrap();
    let scope_q = statement_only_inside(p0, s0, alphabet.len());
    let mut run = StreamingRun::new(&scope_q);
    for i in 0..trace.len() {
        run.step(TaggedSymbol::new(trace.kind(i), trace.symbol(i)));
    }
    println!(
        "statement s0 only inside p0? {} (peak stack {})",
        run.is_accepting(),
        run.max_stack_height()
    );
}
