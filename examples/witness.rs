//! Witness extraction across the automaton models: instead of a bare
//! boolean, every decision explains itself with a concrete input.
//!
//! * `query::witness(&a)` — a shortest-ish accepted input (`None` iff the
//!   language is empty);
//! * `query::counterexample(&a, &b)` — an input accepted by `a` but not `b`
//!   (`None` iff `L(a) ⊆ L(b)`);
//! * `query::distinguish(&a, &b)` — an either-direction separator (`None`
//!   iff `L(a) = L(b)`).
//!
//! The verbs are the same for nested word automata (deterministic,
//! nondeterministic and joinless), word automata and stepwise tree
//! automata; the per-model engines differ (summary-relation derivations,
//! BFS, bottom-up reachability) but all hide behind `Witness`.
//!
//! Run with `cargo run --example witness`.

use nested_words_suite::nwa::families::path_family_nwa;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

fn main() {
    let ab = Alphabet::ab();
    let (a, b) = (Symbol(0), Symbol(1));

    // --- deterministic NWA: the Theorem 3 path family ---------------------
    let l3 = path_family_nwa(3);
    let w = query::witness(&l3).expect("L_3 is not empty");
    println!(
        "witness for L_3 ({} states):       {}",
        l3.num_states(),
        display_nested_word(&w, &ab)
    );
    assert!(query::contains(&l3, &w));

    // Two members of the family are inequivalent; the separator is a path
    // word of exactly one of the two lengths.
    let l1 = path_family_nwa(1);
    let l2 = path_family_nwa(2);
    let sep = query::distinguish(&l1, &l2).expect("L_1 ≠ L_2");
    println!(
        "separator for L_1 vs L_2:          {}   (in L_1: {}, in L_2: {})",
        display_nested_word(&sep, &ab),
        query::contains(&l1, &sep),
        query::contains(&l2, &sep)
    );

    // --- nondeterministic NWA, no determinization -------------------------
    // "some matched call/return pair is labelled b": the witness engine runs
    // directly on the transition relations.
    let mut some_b = NnwaBuilder::new(3, 2).initial(0).accepting(2);
    for sym in [a, b] {
        some_b = some_b.internal(0, sym, 0).call(0, sym, 0, 0);
        for h in [0usize, 1] {
            some_b = some_b.ret(0, h, sym, 0);
        }
    }
    let some_b = some_b.call(0, b, 0, 1).ret(0, 1, b, 2).build();
    let w = query::witness(&some_b).expect("language not empty");
    println!(
        "witness for 'some matched b-pair': {}",
        display_nested_word(&w, &ab)
    );
    assert!(query::contains(&some_b, &w));

    // --- joinless NWA ------------------------------------------------------
    // Top-down style check "the root is labelled a", witnessed through the
    // exact expansion of the mode-split return relation.
    let mut rooted_a = JoinlessNwa::new(3, 2);
    rooted_a.set_linear(0, false);
    rooted_a.set_linear(1, false);
    rooted_a.add_initial(0);
    rooted_a.add_accepting(1);
    rooted_a.add_accepting(2);
    rooted_a.add_call(0, a, 1, 2);
    for sym in [a, b] {
        rooted_a.add_call(1, sym, 1, 1);
        rooted_a.add_return(1, sym, 1);
        rooted_a.add_return(2, sym, 2);
    }
    let w = query::witness(&rooted_a).expect("language not empty");
    println!(
        "witness for joinless 'root is a':  {}",
        display_nested_word(&w, &ab)
    );
    assert!(query::contains(&rooted_a, &w));

    // --- word automata ------------------------------------------------------
    // "even number of 1s" is not included in "ends in 1"; the counterexample
    // is found by BFS (the rewired `Dfa::find_accepted_word`).
    let even_ones = DfaBuilder::new(2, 2, 0)
        .accepting(0)
        .transition(0, 0, 0)
        .transition(0, 1, 1)
        .transition(1, 0, 1)
        .transition(1, 1, 0)
        .build();
    let ends_in_one = DfaBuilder::new(2, 2, 0)
        .accepting(1)
        .transition(0, 0, 0)
        .transition(0, 1, 1)
        .transition(1, 0, 0)
        .transition(1, 1, 1)
        .build();
    let cx = query::counterexample(&even_ones, &ends_in_one).expect("inclusion fails");
    println!("counterexample to 'even ⊆ ends-in-1': {cx:?} (the empty word)");
    assert!(query::contains(&even_ones, &cx[..]));
    assert!(!query::contains(&ends_in_one, &cx[..]));

    // --- stepwise tree automata --------------------------------------------
    // "contains a b-labelled node": the witness is a smallest accepted tree,
    // produced by bottom-up reachability.
    let mut contains_b = DetStepwiseTA::new(2, 2);
    contains_b.set_init(a, 0);
    contains_b.set_init(b, 1);
    for q in 0..2 {
        for r in 0..2 {
            contains_b.set_combine(q, r, usize::from(q == 1 || r == 1));
        }
    }
    contains_b.set_accepting(1, true);
    let t = query::witness(&contains_b).expect("language not empty");
    println!("witness tree for 'contains b':     {}", t.display(&ab));
    assert!(query::contains(&contains_b, &t));
    let sep = query::distinguish(&contains_b, &contains_b.complement()).expect("inequivalent");
    println!(
        "separator vs complement:           {} (accepted by exactly one side)",
        sep.display(&ab)
    );

    // Explanations are two-sided: equal languages have no separator.
    assert!(query::distinguish(&l1, &l1).is_none());
    assert!(query::counterexample(&even_ones, &even_ones).is_none());
    println!("equal languages produce no separator ✓");
}
