//! Streaming document processing: parse an XML-ish document into a nested
//! word, compile queries to deterministic NWAs, and evaluate them in a
//! single pass with memory proportional to the nesting depth (§1 of the
//! paper and experiments E14/E15).
//!
//! Run with `cargo run --example xml_streaming`.

use nested_words_suite::nwa_xml::generate::{generate_document, DocumentConfig};
use nested_words_suite::nwa_xml::queries::{
    contains_tag_nwa, depth_at_most_nwa, patterns_in_order_nwa, run_streaming,
};
use nested_words_suite::nwa_xml::sax::parse_document;
use nested_words_suite::prelude::*;

fn main() {
    // A small hand-written document.
    let mut ab = Alphabet::new();
    let doc = parse_document(
        "<library><book>moby dick</book><book>nested words</book><shelf/></library>",
        &mut ab,
    )
    .unwrap();
    println!(
        "document: {} events, depth {}, well-matched: {}",
        doc.len(),
        doc.depth(),
        doc.is_well_matched()
    );

    let book = ab.lookup("book").unwrap();
    let moby = ab.lookup("moby").unwrap();
    let nested = ab.lookup("nested").unwrap();
    let sigma = ab.len();

    let q1 = contains_tag_nwa(book, sigma);
    let q2 = patterns_in_order_nwa(&[moby, nested], sigma);
    let q3 = patterns_in_order_nwa(&[nested, moby], sigma);
    let q4 = depth_at_most_nwa(1, sigma);
    println!(
        "contains <book>?                 {}",
        run_streaming(&q1, &doc).accepted
    );
    println!(
        "'moby' before 'nested'?          {}",
        run_streaming(&q2, &doc).accepted
    );
    println!(
        "'nested' before 'moby'?          {}",
        run_streaming(&q3, &doc).accepted
    );
    println!(
        "nesting depth at most 1?         {}",
        run_streaming(&q4, &doc).accepted
    );

    // A large synthetic document, processed in one pass.
    let (gen_ab, big) = generate_document(
        DocumentConfig {
            events: 200_000,
            max_depth: 32,
            ..Default::default()
        },
        42,
    );
    let tag = gen_ab.lookup("t3").unwrap();
    let q = contains_tag_nwa(tag, gen_ab.len());
    let outcome = run_streaming(&q, &big);
    println!(
        "synthetic document: {} events processed, peak stack {} entries, query result {}",
        outcome.events, outcome.peak_memory, outcome.accepted
    );
}
