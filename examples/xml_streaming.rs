//! Streaming document processing: compile queries to deterministic NWAs and
//! evaluate them over SAX event streams in a single pass with memory
//! proportional to the nesting depth (§1 of the paper and experiments
//! E14/E15) — via the `automata-core` `StreamAcceptor` trait and the
//! incremental byte-level `sax::ByteTokenizer`, which never materialize the
//! document (`run_streaming_text` / `run_streaming_reader` are the
//! bytes-in → verdict-out pipeline), plus the `Compile`d dense-table
//! engine on the same streams.
//!
//! Run with `cargo run --release --example xml_streaming`.

use nested_words_suite::nwa_xml::generate::{generate_document, DocumentConfig};
use nested_words_suite::nwa_xml::queries::{
    contains_tag_nwa, depth_at_most_nwa, patterns_in_order_nwa, run_streaming,
    run_streaming_reader, run_streaming_text,
};
use nested_words_suite::nwa_xml::sax::{parse_document, to_xml};
use nested_words_suite::prelude::*;
use nested_words_suite::query;

fn main() {
    // A small hand-written document (attributes are understood and ignored).
    let mut ab = Alphabet::new();
    let text = "<library><book id=\"1\">moby dick</book><book id=\"2\">nested words</book><shelf/></library>";
    let doc = parse_document(text, &mut ab).unwrap();
    println!(
        "document: {} events, depth {}, well-matched: {}",
        doc.len(),
        doc.depth(),
        doc.is_well_matched()
    );

    let book = ab.lookup("book").unwrap();
    let moby = ab.lookup("moby").unwrap();
    let nested = ab.lookup("nested").unwrap();
    let sigma = ab.len();

    let q1 = contains_tag_nwa(book, sigma);
    let q2 = patterns_in_order_nwa(&[moby, nested], sigma);
    let q3 = patterns_in_order_nwa(&[nested, moby], sigma);
    let q4 = depth_at_most_nwa(1, sigma);
    // The alphabet already holds every symbol of `text`, so the incremental
    // tokenizer re-runs the document as a pure event stream.
    println!(
        "contains <book>?                 {}",
        run_streaming_text(&q1, text, &ab).unwrap().accepted
    );
    println!(
        "'moby' before 'nested'?          {}",
        run_streaming_text(&q2, text, &ab).unwrap().accepted
    );
    println!(
        "'nested' before 'moby'?          {}",
        run_streaming_text(&q3, text, &ab).unwrap().accepted
    );
    println!(
        "nesting depth at most 1?         {}",
        run_streaming_text(&q4, text, &ab).unwrap().accepted
    );

    // A large synthetic document, processed three ways: batch membership on
    // the materialized nested word, streaming over its events, and fully
    // incrementally from the serialized XML text.
    let (gen_ab, big) = generate_document(
        DocumentConfig {
            events: 200_000,
            max_depth: 32,
            ..Default::default()
        },
        42,
    );
    let tag = gen_ab.lookup("t3").unwrap();
    let q = contains_tag_nwa(tag, gen_ab.len());

    let outcome = run_streaming(&q, &big);
    println!(
        "synthetic document: {} events processed, peak stack {} entries, query result {}",
        outcome.events, outcome.peak_memory, outcome.accepted
    );
    assert_eq!(outcome.accepted, query::contains(&q, &big));

    let xml = to_xml(&big, &gen_ab);
    let incremental = run_streaming_text(&q, &xml, &gen_ab).unwrap();
    assert_eq!(incremental.accepted, outcome.accepted);
    println!(
        "incremental pass over {} bytes of XML: peak memory {} stack entries (depth), \
         not {} positions (length)",
        xml.len(),
        incremental.peak_memory,
        incremental.events
    );

    // The byte-level pipeline: the same query driven straight off an
    // `io::Read` (here an in-memory reader; a file or socket works the
    // same) through the bulk structural scanner — bytes in, verdict out.
    let from_bytes = run_streaming_reader(&q, xml.as_bytes(), &gen_ab).unwrap();
    assert_eq!(from_bytes, incremental);
    println!(
        "byte-level pass (bulk scanner over io::Read): same verdict {}, same peak {}",
        from_bytes.accepted, from_bytes.peak_memory
    );

    // The compiled dense-table engine: same language, same byte pipeline,
    // premultiplied u32 tables instead of the interpreted dispatch. Timed,
    // because this is the end-to-end bytes_to_verdict hot path (E15c).
    let compiled = query::compile(&q);
    let start = std::time::Instant::now();
    let reps = 20u32;
    let mut from_compiled = run_streaming_reader(&compiled, xml.as_bytes(), &gen_ab).unwrap();
    for _ in 1..reps {
        from_compiled = run_streaming_reader(&compiled, xml.as_bytes(), &gen_ab).unwrap();
    }
    let elapsed = start.elapsed();
    assert_eq!(from_compiled, incremental);
    let mb_s = (xml.len() as f64 * f64::from(reps)) / elapsed.as_secs_f64() / 1e6;
    println!(
        "compiled dense-table run ({} bytes of tables): same verdict {}, {:.0} MB/s bytes-to-verdict",
        compiled.table_bytes(),
        from_compiled.accepted,
        mb_s
    );

    // The same events drive a nondeterministic automaton through the same
    // trait: the on-the-fly subset construction keeps one summary per open
    // element — and its compiled form memoizes every distinct subset step.
    let n = Nnwa::from_deterministic(&q);
    let stream_events = (0..big.len()).map(|i| TaggedSymbol::new(big.kind(i), big.symbol(i)));
    println!(
        "nondeterministic run over the same stream: accepted {}",
        query::contains_stream(&n, stream_events)
    );
    let compiled_n = query::compile(&n);
    let stream_events = (0..big.len()).map(|i| TaggedSymbol::new(big.kind(i), big.symbol(i)));
    println!(
        "compiled subset engine over the same stream: accepted {}, {} summaries memoized",
        query::contains_stream(&compiled_n, stream_events),
        compiled_n.cached_summaries()
    );
}
