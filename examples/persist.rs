//! Persistent artifacts and suspendable runs, end to end: compile once,
//! ship bytes, resume anywhere.
//!
//! One process compiles a query into a dense-table engine and `save`s it
//! as a versioned, checksummed byte image; a "worker process" (simulated
//! here) `load`s those bytes — no recompilation — and serves them through
//! a `DecisionService` booted straight from the artifact bytes. In-flight
//! documents are *parked* between bursts of input: a parked document is
//! its serializable snapshot, fingerprint-checked on every resubmission,
//! so state can migrate across workers — or across processes, next to the
//! artifact bytes.
//!
//! The artifact image is written to `target/artifacts/` so the bytes also
//! exist on disk, like a real deployment would ship them.
//!
//! Run with `cargo run --release --example persist`.

use nested_words_suite::nwa::CompiledNwa;
use nested_words_suite::nwa_service::{DecisionService, ServiceConfig};
use nested_words_suite::nwa_xml::queries::contains_tag_nwa;
use nested_words_suite::nwa_xml::sax::tokenize;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

fn main() {
    // ── Build side: compile the query and save the artifact ─────────────
    let mut alphabet = Alphabet::new();
    let streams: Vec<Vec<TaggedSymbol>> = [
        "<doc><head>t</head><sec><sec>t</sec></sec></doc>",
        "<doc><head>t</head></doc>",
        "<doc><sec>t</sec><head><sec/></head></doc>",
    ]
    .iter()
    .map(|xml| tokenize(xml, &mut alphabet).unwrap())
    .collect();

    let query_nwa = contains_tag_nwa(alphabet.lookup("sec").unwrap(), alphabet.len());
    let compiled = query::compile(&query_nwa);
    let bytes = query::save(&compiled);
    println!(
        "compiled <sec>-query: {} states over sigma={} -> {} artifact bytes",
        query_nwa.num_states(),
        alphabet.len(),
        bytes.len()
    );

    let dir = std::path::Path::new("target/artifacts");
    std::fs::create_dir_all(dir).expect("create target/artifacts");
    let path = dir.join("contains_sec.nwsa");
    std::fs::write(&path, &bytes).expect("write artifact bytes");
    println!("artifact written to {}", path.display());

    // ── Worker side: reload the bytes and verify structural equality ────
    let shipped = std::fs::read(&path).expect("read artifact bytes");
    let reloaded: CompiledNwa = query::load(&shipped).expect("artifact bytes validate");
    assert_eq!(reloaded, compiled, "load(save(a)) is a, structurally");
    println!("reloaded artifact is structurally equal to the compiled one");

    // Corruption is a typed error, never a panic or a silent misread.
    let mut corrupt = shipped.clone();
    corrupt[8] ^= 0xff;
    println!(
        "a corrupted image is refused: {}",
        query::load::<CompiledNwa>(&corrupt).unwrap_err()
    );

    // ── Serve the reloaded bytes: a service booted from the image ───────
    let service: DecisionService<CompiledNwa> = DecisionService::from_artifact_bytes(
        &shipped,
        alphabet.clone(),
        ServiceConfig {
            workers: 2,
            lanes: 4,
        },
    )
    .expect("service boots from artifact bytes");

    for (i, events) in streams.iter().enumerate() {
        let verdict = service.submit(events.clone()).unwrap().wait().unwrap();
        println!(
            "document {i}: {} events -> {}",
            verdict.events,
            if verdict.accepted {
                "contains <sec>"
            } else {
                "no <sec>"
            }
        );
    }

    // ── Park and resume: a long-lived document fed in bursts ────────────
    // The document trickles in; between bursts the run is parked — the
    // parked job is its snapshot, serializable next to the artifact bytes.
    let full = &streams[0];
    let mut doc = service.open_document();
    for (burst_no, burst) in full.chunks(4).enumerate() {
        doc = service
            .advance(&doc, burst.to_vec())
            .unwrap()
            .wait()
            .unwrap();
        println!(
            "burst {burst_no}: document parked at {} events ({} snapshot bytes)",
            doc.events(),
            doc.to_bytes().len()
        );
    }
    let outcome = service.finish(&doc).unwrap();
    assert!(outcome.accepted);
    println!(
        "parked document finished: {} events, peak stack {}, accepted",
        outcome.events, outcome.peak_memory
    );

    // Resubmission validates the artifact fingerprint: a snapshot parked
    // by a *different* artifact is refused with a typed error.
    let other = query::compile(&contains_tag_nwa(
        alphabet.lookup("head").unwrap(),
        alphabet.len(),
    ));
    let foreign = DecisionService::new(other, alphabet, ServiceConfig::default()).open_document();
    println!(
        "foreign snapshot is refused: {}",
        service.advance(&foreign, vec![]).unwrap_err()
    );
}
