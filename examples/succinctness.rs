//! Succinctness in action: reproduces the state-count comparisons behind
//! Theorems 3, 5 and 8 of the paper for small parameters and prints them as
//! a table (the full sweeps live in the benchmark harness).
//!
//! All minimal state counts are obtained through the unified
//! `automata_core::Minimize` trait (via `nwa::families::minimal_states` and
//! `query::minimize`), so the same code path covers word DFAs (Theorem 3
//! and 8 baselines), the new congruence reduction on nested word automata
//! (the Theorem 5 flat sizes) and stepwise tree automata.
//!
//! Run with `cargo run --release --example succinctness`.

use nested_words_suite::nwa::families::{theorem3_sweep, theorem5_sweep, theorem8_sweep};
use nested_words_suite::prelude::*;
use nested_words_suite::query;

fn main() {
    println!("Theorem 3 — L_s = {{ path(w) : |w| = s }}");
    println!(
        "{:>3} {:>12} {:>18}",
        "s", "NWA states", "minimal DFA states"
    );
    for row in theorem3_sweep(10) {
        println!(
            "{:>3} {:>12} {:>18}",
            row.s, row.succinct_states, row.baseline_states
        );
    }

    println!("\nTheorem 5 — flat NWA vs bottom-up congruence classes");
    println!(
        "{:>3} {:>18} {:>26}",
        "s", "min flat NWA states", "distinguishable blocks (≥ bottom-up states)"
    );
    for row in theorem5_sweep(8) {
        println!(
            "{:>3} {:>18} {:>26}",
            row.s, row.succinct_states, row.baseline_states
        );
    }

    println!("\nTheorem 8 — path(Σ^s a Σ* a Σ^s)");
    println!(
        "{:>3} {:>12} {:>28}",
        "s", "NWA states", "minimal word DFA states (= det top-down/bottom-up)"
    );
    for row in theorem8_sweep(8) {
        println!(
            "{:>3} {:>12} {:>28}",
            row.s, row.succinct_states, row.baseline_states
        );
    }

    // Stepwise tree automata go through the very same trait: determinize the
    // nondeterministic "some leaf among the first k is b" automaton and
    // minimize the (wasteful) subset automaton back down.
    println!("\nStepwise tree automata — determinize, then query::minimize");
    println!("{:>3} {:>18} {:>16}", "k", "determinized", "minimal");
    for k in 1..=4usize {
        let det = some_early_b_leaf(k).determinize();
        let min = query::minimize(&det);
        println!("{:>3} {:>18} {:>16}", k, det.num_states(), min.num_states());
    }
}

/// Nondeterministic stepwise automaton for "some node among the first `k`
/// children folded in is a b-labelled leaf" — the guess of *which* child
/// makes determinization overshoot, so minimization has work to do.
fn some_early_b_leaf(k: usize) -> StepwiseTA {
    let (a, b) = (Symbol(0), Symbol(1));
    // states: 0 = counting (tracks 0..k children seen), …, k = counted k,
    // k+1 = guessed leaf found
    let found = k + 1;
    let mut ta = StepwiseTA::new(k + 2, 2);
    for sym in [a, b] {
        ta.add_init(sym, 0);
    }
    ta.add_init(b, found);
    for c in 0..k {
        // fold child c+1 into the count
        for r in 0..k + 2 {
            ta.add_combine(c, r, c + 1);
        }
        // or nondeterministically mark this child as the guessed b-leaf
        ta.add_combine(c, found, found);
    }
    for r in 0..k + 2 {
        ta.add_combine(k, r, k);
        ta.add_combine(found, r, found);
    }
    ta.add_accepting(found);
    ta
}
