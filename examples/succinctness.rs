//! Succinctness in action: reproduces the state-count comparisons behind
//! Theorems 3, 5 and 8 of the paper for small parameters and prints them as
//! a table (the full sweeps live in the benchmark harness).
//!
//! Run with `cargo run --release --example succinctness`.

use nested_words_suite::nwa::families::{
    path_family_nwa, path_family_tagged_dfa, theorem5_distinguishable_blocks, theorem5_tagged_dfa,
    theorem8_nwa, theorem8_regex,
};

fn main() {
    println!("Theorem 3 — L_s = {{ path(w) : |w| = s }}");
    println!(
        "{:>3} {:>12} {:>18}",
        "s", "NWA states", "minimal DFA states"
    );
    for s in 1..=10usize {
        let nwa = path_family_nwa(s);
        let dfa = path_family_tagged_dfa(s).minimize();
        println!("{:>3} {:>12} {:>18}", s, nwa.num_states(), dfa.num_states());
    }

    println!("\nTheorem 5 — flat NWA vs bottom-up congruence classes");
    println!(
        "{:>3} {:>18} {:>26}",
        "s", "flat NWA states", "distinguishable blocks (≥ bottom-up states)"
    );
    for s in 1..=8usize {
        let flat = theorem5_tagged_dfa(s).minimize();
        let blocks = theorem5_distinguishable_blocks(s);
        println!("{:>3} {:>18} {:>26}", s, flat.num_states(), blocks);
    }

    println!("\nTheorem 8 — path(Σ^s a Σ* a Σ^s)");
    println!(
        "{:>3} {:>12} {:>28}",
        "s", "NWA states", "minimal word DFA states (= det top-down/bottom-up)"
    );
    for s in 1..=8usize {
        let nwa = theorem8_nwa(s);
        let dfa = theorem8_regex(s).to_min_dfa(2);
        println!("{:>3} {:>12} {:>28}", s, nwa.num_states(), dfa.num_states());
    }
}
