//! Multi-query execution: author a set of document queries with the
//! combinator layer (`query::expr`), compile all of them into **one**
//! artifact (`query::compile_set` — a `QuerySet` picking between a shared
//! product table and lockstep engines by size), and decide every query in
//! a single tokenization pass over the byte stream
//! (`query::run_multi_streaming_reader`). The same set then serves
//! concurrent callers through `DecisionService::submit_multi`, and ships
//! as versioned bytes through the persistence verbs.
//!
//! Run with `cargo run --release --example multi_query`.

use nested_words_suite::nwa_xml::generate::{generate_document, DocumentConfig};
use nested_words_suite::nwa_xml::sax::to_xml;
use nested_words_suite::prelude::*;
use nested_words_suite::query;
use nested_words_suite::query::expr::Query;

fn main() {
    // A synthetic document library: one alphabet, many queries over it.
    let (ab, doc) = generate_document(
        DocumentConfig {
            events: 100_000,
            max_depth: 32,
            ..Default::default()
        },
        7,
    );
    let xml = to_xml(&doc, &ab);
    let sigma = ab.len();
    let t0 = ab.lookup("t0").unwrap();
    let t1 = ab.lookup("t1").unwrap();
    let t2 = ab.lookup("t2").unwrap();
    let t3 = ab.lookup("t3").unwrap();

    // Author queries with the combinator layer: zoo primitives composed
    // under and/or/not, each lowered to one deterministic NWA.
    let authored = [
        ("contains <t2>", Query::contains(t2)),
        ("t0 then t3 in order", Query::in_order([t0, t3])),
        ("t1 inside an open t0", Query::within(t0, t1)),
        ("depth ≤ 4", Query::depth_le(4)),
        (
            "t2 inside t0, or shallow",
            Query::within(t0, t2).or(Query::depth_le(2)),
        ),
        (
            "contains t3 but never deeper than 30",
            Query::contains(t3).and(Query::open_depth_le(30)),
        ),
        ("no t1 at all", Query::contains(t1).not()),
    ];
    let lowered: Vec<Nwa> = authored.iter().map(|(_, e)| e.lower(sigma)).collect();

    // One artifact for the whole set; the backend is picked by table size.
    let set = query::compile_set(&lowered);
    println!(
        "compiled {} queries into one {:?}-backend set ({} bytes of tables)",
        set.num_queries(),
        set.backend(),
        set.table_bytes(),
    );

    // One pass over the bytes answers every query.
    let outcomes = query::run_multi_streaming_reader(&set, xml.as_bytes(), &ab).unwrap();
    println!(
        "one tokenization pass over {} bytes ({} events):",
        xml.len(),
        outcomes[0].events
    );
    for ((name, _), outcome) in authored.iter().zip(&outcomes) {
        println!("  {:<38} {}", name, outcome.accepted);
    }

    // The same verdicts, query by query, cost one pass *each* — the
    // amortization the E19 benchmark gates (one-pass ≥ 2× at M = 16).
    for ((name, _), (q, expected)) in authored.iter().zip(lowered.iter().zip(&outcomes)) {
        let solo = query::run_streaming_reader(&query::compile(q), xml.as_bytes(), &ab).unwrap();
        assert_eq!(solo, *expected, "query {name}");
    }
    println!("per-query sequential passes agree on every verdict");

    // The set is a Persist artifact like any compiled engine: save, ship,
    // reload byte-exactly, and serve.
    let bytes = query::save(&set);
    let reloaded: QuerySet = query::load(&bytes).unwrap();
    assert_eq!(reloaded, set);
    println!(
        "round-tripped the set through {} artifact bytes",
        bytes.len()
    );

    // Serving: one submission, one queue slot, all verdicts — with every
    // member query's alphabet fingerprint validated before queueing.
    let service = DecisionService::new(reloaded, ab.clone(), ServiceConfig::default());
    let handle = service
        .submit_multi(doc.to_tagged())
        .expect("alphabet-validated submission");
    let served = handle.wait().unwrap();
    assert_eq!(
        served.iter().map(|o| o.accepted).collect::<Vec<_>>(),
        outcomes.iter().map(|o| o.accepted).collect::<Vec<_>>(),
    );
    println!(
        "decision service returned all {} verdicts from one submission",
        served.len()
    );
}
