//! The concurrent decision service, end to end: one query compiled once,
//! many XML documents decided concurrently — bytes in, verdicts out.
//!
//! Submitter threads feed serialized documents into a shared
//! `DecisionService` through `submit_bytes` (the incremental SAX
//! `ByteTokenizer` runs on the submitting thread); worker threads pull the
//! tokenized streams into batch slots and decide up to four lanes in
//! software-pipelined lockstep over the one shared compiled table. The
//! service's built-in counters show how full the batches actually ran.
//!
//! Run with `cargo run --release --example service`.

use nested_words_suite::nwa_service::{DecisionHandle, DecisionService, ServiceConfig};
use nested_words_suite::nwa_xml::generate::{generate_document, DocumentConfig};
use nested_words_suite::nwa_xml::queries::contains_tag_nwa;
use nested_words_suite::nwa_xml::sax::to_xml;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

fn main() {
    // One synthetic corpus: documents of varying size and depth over one
    // shared alphabet (same generator config + different seeds).
    let documents: Vec<(Alphabet, String)> = (0..24u64)
        .map(|seed| {
            let (ab, doc) = generate_document(
                DocumentConfig {
                    events: 2_000 + (seed as usize % 5) * 1_500,
                    max_depth: 16,
                    ..Default::default()
                },
                seed,
            );
            let xml = to_xml(&doc, &ab);
            (ab, xml)
        })
        .collect();
    let alphabet = documents[0].0.clone();

    // The query — "does the document contain a <t3> element?" — compiled
    // once into the dense-table engine; the service shares that one table
    // across all its workers.
    let tag = alphabet.lookup("t3").unwrap();
    let q = contains_tag_nwa(tag, alphabet.len());
    let service = DecisionService::new(
        query::compile(&q),
        alphabet.clone(),
        ServiceConfig {
            workers: 2,
            lanes: 4,
        },
    );

    // Submit every document from a handful of threads (tokenization runs on
    // the submitting thread, so it scales with submitters), then collect
    // the verdicts through the handles.
    let handles: Vec<(usize, DecisionHandle)> = std::thread::scope(|scope| {
        let chunks: Vec<_> = documents.chunks(8).enumerate().collect();
        let spawned: Vec<_> = chunks
            .into_iter()
            .map(|(c, chunk)| {
                let service = &service;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, (_, xml))| {
                            let handle = service.submit_bytes(xml.as_bytes()).unwrap();
                            (c * 8 + i, handle)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        spawned
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect()
    });

    let mut accepted = 0usize;
    for (i, handle) in &handles {
        let outcome = handle.wait().expect("worker fulfils every handle");
        accepted += usize::from(outcome.accepted);
        if *i < 4 {
            println!(
                "document {i:2}: {:6} events, peak stack {:2}, contains <t3>: {}",
                outcome.events, outcome.peak_memory, outcome.accepted
            );
        }
    }
    println!(
        "... {} of {} documents contain <t3>",
        accepted,
        handles.len()
    );

    // The service's own accounting: queue pressure and per-worker batch
    // occupancy (1.0 = every batch ran with all four lanes full).
    let stats = service.stats();
    println!(
        "service: {} submitted, {} completed, queue high-water {}",
        stats.submitted, stats.completed, stats.max_queue_depth
    );
    for (w, worker) in stats.workers.iter().enumerate() {
        println!(
            "worker {w}: {} batches, {} documents, {} events, lane occupancy {:.2}",
            worker.batches, worker.documents, worker.events, worker.lane_occupancy
        );
    }

    // Cross-check a few verdicts against the single-stream facade.
    for (i, (_, xml)) in documents.iter().enumerate().take(4) {
        let reference =
            nested_words_suite::nwa_xml::queries::run_streaming_text(&q, xml, &alphabet)
                .unwrap()
                .accepted;
        let (_, handle) = handles.iter().find(|(j, _)| *j == i).unwrap();
        assert_eq!(handle.wait().unwrap().accepted, reference);
    }
    println!("verdicts agree with the single-stream streaming pipeline");
}
