//! Quickstart: build the nested words of Figure 1, inspect their structure,
//! and run a deterministic nested word automaton over them.
//!
//! Run with `cargo run --example quickstart`.

use nested_words::tagged::{display_nested_word, parse_nested_word};
use nested_words::{Alphabet, OrderedTree};
use nwa::families::path_family_nwa;
use nwa::nondet::Nnwa;

fn main() {
    let mut ab = Alphabet::ab();

    // The three nested words of Figure 1 of the paper.
    let n1 = parse_nested_word("<a <b a a> <b a b> a> <a b a a>", &mut ab).unwrap();
    let n2 = parse_nested_word("a a> <b a a> <a <a", &mut ab).unwrap();
    let n3 = parse_nested_word("<a <a a> <b b> a>", &mut ab).unwrap();

    for (name, word) in [("n1", &n1), ("n2", &n2), ("n3", &n3)] {
        println!(
            "{name}: {:<40} length {:>2}  depth {}  well-matched {:<5} rooted {}",
            display_nested_word(word, &ab),
            word.len(),
            word.depth(),
            word.is_well_matched(),
            word.is_rooted()
        );
    }

    // n3 is a tree word and decodes to the ordered tree a(a(), b()).
    let tree = OrderedTree::from_nested_word(&n3).unwrap();
    println!("n3 as a tree: {}", tree.display(&ab));

    // A deterministic NWA for the Theorem 3 language L_3 = { path(w) : |w| = 3 }.
    let nwa = path_family_nwa(3);
    let inside = parse_nested_word("<a <b <a a> b> a>", &mut ab).unwrap();
    let outside = parse_nested_word("<a <b b> a>", &mut ab).unwrap();
    println!(
        "L_3 automaton ({} states): accepts path(aba)? {}  accepts path(ab)? {}",
        nwa.num_states(),
        nwa.accepts(&inside),
        nwa.accepts(&outside)
    );

    // Nondeterministic automata determinize via the summary-set construction.
    let nondet = Nnwa::from_deterministic(&nwa);
    let det = nondet.determinize();
    println!(
        "re-determinized automaton has {} states and still accepts path(aba): {}",
        det.num_states(),
        det.accepts(&inside)
    );
}
