//! Quickstart for the unified API: build the nested words of Figure 1,
//! inspect their structure, run a deterministic nested word automaton over
//! them through the `query` facade, and check language equivalence after
//! determinization with `query::equals`.
//!
//! Everything here comes from two imports: `nested_words_suite::prelude::*`
//! (the data model, the automaton types and the shared traits) and
//! `nested_words_suite::query` (the WALi-style decision verbs).
//!
//! Run with `cargo run --example quickstart`.

use nested_words_suite::nwa::families::path_family_nwa;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

fn main() {
    let mut ab = Alphabet::ab();

    // The three nested words of Figure 1 of the paper.
    let n1 = parse_nested_word("<a <b a a> <b a b> a> <a b a a>", &mut ab).unwrap();
    let n2 = parse_nested_word("a a> <b a a> <a <a", &mut ab).unwrap();
    let n3 = parse_nested_word("<a <a a> <b b> a>", &mut ab).unwrap();

    for (name, word) in [("n1", &n1), ("n2", &n2), ("n3", &n3)] {
        println!(
            "{name}: {:<40} length {:>2}  depth {}  well-matched {:<5} rooted {}",
            display_nested_word(word, &ab),
            word.len(),
            word.depth(),
            word.is_well_matched(),
            word.is_rooted()
        );
    }

    // n3 is a tree word and decodes to the ordered tree a(a(), b()).
    let tree = OrderedTree::from_nested_word(&n3).unwrap();
    println!("n3 as a tree: {}", tree.display(&ab));

    // A deterministic NWA for the Theorem 3 language L_3 = { path(w) : |w| = 3 }.
    // Membership is the same verb for every automaton model in the suite:
    // `query::contains(&automaton, &input)`.
    let nwa = path_family_nwa(3);
    let inside = parse_nested_word("<a <b <a a> b> a>", &mut ab).unwrap();
    let outside = parse_nested_word("<a <b b> a>", &mut ab).unwrap();
    println!(
        "L_3 automaton ({} states): accepts path(aba)? {}  accepts path(ab)? {}",
        nwa.num_states(),
        query::contains(&nwa, &inside),
        query::contains(&nwa, &outside)
    );

    // Nondeterministic automata determinize via the summary-set construction;
    // `query::equals` certifies the language is preserved.
    let nondet = Nnwa::from_deterministic(&nwa);
    let det = nondet.determinize();
    println!(
        "re-determinized automaton has {} states; language preserved: {}",
        det.num_states(),
        query::equals(&nwa, &det)
    );

    // Boolean operations come from the shared `BooleanOps` trait; together
    // with `query::is_empty` they decide inclusion the WALi way.
    println!(
        "L_3 ∩ L_3ᶜ empty? {}   L_3 ⊆ L_3? {}",
        query::is_empty(&nwa.intersect(&nwa.complement())),
        query::subset_eq(&nwa, &nwa)
    );
}
