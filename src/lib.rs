//! # nested-words-suite
//!
//! Umbrella crate for the reproduction of *"Marrying Words and Trees"*
//! (Rajeev Alur, PODS 2007): nested words, the seven automaton models that
//! read them (or their word/tree projections), and **one API** over all of
//! them.
//!
//! ## The unified API
//!
//! Every automaton model implements the [`automata_core`] trait vocabulary,
//! so membership and the decision problems are spelled the same way no
//! matter which machine you hold:
//!
//! * [`prelude`] — one `use nested_words_suite::prelude::*;` brings in the
//!   data model ([`prelude::NestedWord`], [`prelude::OrderedTree`],
//!   [`prelude::Alphabet`]), all automaton types, the fluent builders
//!   ([`prelude::NwaBuilder`], [`prelude::NnwaBuilder`],
//!   [`prelude::DfaBuilder`]) and the traits
//!   ([`prelude::Acceptor`], [`prelude::BooleanOps`],
//!   [`prelude::Emptiness`], [`prelude::Decide`]);
//! * [`query`] — WALi-style free-function verbs, generic over the traits:
//!   [`query::contains`], [`query::is_empty`], [`query::subset_eq`],
//!   [`query::equals`], the streaming verbs [`query::run_stream`] /
//!   [`query::contains_stream`] that evaluate any
//!   [`prelude::StreamAcceptor`] over SAX-style event streams in one pass
//!   with memory proportional to the nesting depth, the bytes-in →
//!   verdict-out pipeline [`query::run_streaming_reader`] /
//!   [`query::run_streaming_text`] that drives any stream acceptor
//!   straight from an [`std::io::Read`] through the bulk structural
//!   scanner ([`nwa_xml::scan`]), the batched verb
//!   [`query::run_batch`] that advances many independent streams in
//!   software-pipelined lockstep over one shared compiled artifact
//!   ([`prelude::BatchAcceptor`]; the [`nwa_service`] crate builds its
//!   batched runner and concurrent decision service on it), the
//!   multi-query verbs [`query::compile_set`] / [`query::run_multi`] /
//!   [`query::run_multi_streaming_reader`] that compile M queries into one
//!   artifact ([`prelude::MultiCompile`], e.g. an [`prelude::QuerySet`])
//!   stepped once per event for a per-query verdict bitmask — one
//!   tokenization pass answering the whole query set, with the
//!   combinator layer [`query::expr`] composing the document-query zoo
//!   under `and`/`or`/`not` before compilation — the
//!   explanation verbs [`query::witness`] / [`query::counterexample`] /
//!   [`query::distinguish`] that turn every negative decision into a
//!   concrete input ([`prelude::Witness`]), and the persistence verbs
//!   [`query::save`] / [`query::load`] (compiled artifacts as versioned,
//!   checksummed bytes — [`prelude::Persist`]) and [`query::suspend`] /
//!   [`query::resume`] (run state as an owned [`prelude::Snapshot`] that
//!   any artifact with the same fingerprint resumes at the exact prefix —
//!   [`prelude::Suspend`]).
//!
//! ```
//! use nested_words_suite::prelude::*;
//! use nested_words_suite::query;
//!
//! // A deterministic NWA over {a} accepting nested words of even length.
//! let a = Symbol(0);
//! let mut b = NwaBuilder::new(2, 1, 0).accepting(0);
//! for q in 0..2usize {
//!     b = b.internal(q, a, 1 - q).call(q, a, 1 - q, 0).ret(q, 0, a, 1 - q).ret(q, 1, a, 1 - q);
//! }
//! let even = b.build();
//!
//! let mut ab = Alphabet::from_names(["a"]);
//! let w = parse_nested_word("<a a>", &mut ab).unwrap();
//! assert!(query::contains(&even, &w));
//! assert!(query::equals(&even, &even.complement().complement()));
//! assert!(query::is_empty(&even.intersect(&even.complement())));
//! ```
//!
//! ## Migration from the per-crate APIs
//!
//! The free decision functions of the individual crates still exist (the
//! trait impls delegate to them), but new code should speak the facade:
//!
//! | old (per-crate)                            | new (facade)                       |
//! |--------------------------------------------|------------------------------------|
//! | `nwa::decision::is_empty(&n)`              | `query::is_empty(&n)`              |
//! | `nwa::decision::is_empty_det(&m)`          | `query::is_empty(&m)`              |
//! | `nwa::decision::included_in(&a, &b)`       | `query::subset_eq(&a, &b)`         |
//! | `nwa::decision::equivalent(&a, &b)`        | `query::equals(&a, &b)`            |
//! | `nwa::decision::included_in_nondet(&a, &b)`| `query::subset_eq(&a, &b)`         |
//! | `nwa::decision::equivalent_nondet(&a, &b)` | `query::equals(&a, &b)`            |
//! | `nwa::boolean::intersect(&a, &b)`          | `a.intersect(&b)`                  |
//! | `nwa::boolean::union(&a, &b)`              | `a.union(&b)`                      |
//! | `nwa::boolean::complement(&a)`             | `a.complement()`                   |
//! | `nwa::boolean::intersect_nondet(&a, &b)`   | `a.intersect(&b)`                  |
//! | `nwa::boolean::union_nondet(&a, &b)`       | `a.union(&b)`                      |
//! | `word_automata::Dfa::equivalent(&a, &b)`   | `query::equals(&a, &b)`            |
//! | `word_automata::Dfa::included_in(&a, &b)`  | `query::subset_eq(&a, &b)`         |
//! | `word_automata::Dfa::find_accepted_word(&d)`| `query::witness(&d)`              |
//! | `nwa_pushdown::emptiness::is_empty(&p)`    | `query::is_empty(&p)`              |
//! | `m.accepts(&w)` (per-model inherent)       | `query::contains(&m, &w)` or trait |
//! | `Nwa::new(n, s, q0)` + `set_*` calls       | `NwaBuilder::new(n, s, q0).…`      |
//! | `Nnwa::new(n, s)` + `add_*` calls          | `NnwaBuilder::new(n, s).…`         |
//! | `Dfa::new(n, s, q0)` + `set_*` calls       | `DfaBuilder::new(n, s, q0).…`      |
//!
//! The individual crates remain available under their own names for code
//! that needs model-specific constructions (determinization, minimization,
//! the succinctness families, SAX parsing, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use automata_core;
pub use nested_words;
pub use nwa;
pub use nwa_pushdown;
pub use nwa_service;
pub use nwa_xml;
pub use pushdown_automata;
pub use tree_automata;
pub use word_automata;

/// One import for the whole suite: data model, automaton types, builders and
/// the unified traits.
pub mod prelude {
    pub use automata_core::{
        Acceptor, BatchAcceptor, BooleanOps, Builder, Compile, Decide, Emptiness, Minimize,
        MultiAcceptor, MultiCompile, Persist, PersistError, QuerySetRun, Snapshot, StateId,
        StreamAcceptor, StreamOutcome, StreamRun, Suspend, Witness,
    };
    pub use nested_words::tagged::{display_nested_word, parse_nested_word};
    pub use nested_words::{
        Alphabet, MatchingRelation, NestedWord, NestedWordError, OrderedTree, PositionKind, Symbol,
        TaggedSymbol, TaggedWord,
    };
    pub use nwa::{
        CompiledNwa, CompiledSummary, JoinlessNwa, JoinlessStreamingRun, Nnwa, NnwaBuilder,
        NnwaStreamingRun, Nwa, NwaBuilder, QuerySet, QuerySetBackend, StreamingRun,
    };
    pub use nwa_pushdown::{Pnwa, PnwaMode};
    pub use nwa_service::{
        BatchRun, DecisionError, DecisionService, DynBatchRun, MultiHandle, MultiSubmitError,
        ParkError, ParkedDoc, ParkedHandle, ServiceConfig,
    };
    pub use pushdown_automata::{Cfg, PushdownTreeAutomaton};
    pub use tree_automata::{
        BottomUpBinaryTA, CompiledStepwiseTA, DetStepwiseTA, StepwiseTA, TopDownBinaryTA,
    };
    pub use word_automata::{CompiledTaggedDfa, Dfa, DfaBuilder, Nfa, Regex, TaggedDfaRun};
}

/// The WALi-style decision verbs, uniform over every automaton model
/// ([`query::contains`], [`query::is_empty`], [`query::subset_eq`],
/// [`query::equals`]), plus the streaming verbs over tagged-symbol event
/// streams ([`query::run_stream`], [`query::contains_stream`]) and the
/// bytes-in → verdict-out pipeline ([`query::run_streaming_reader`],
/// [`query::run_streaming_text`]) that feeds any stream acceptor from raw
/// bytes through the bulk structural scanner,
/// compilation into dense-table execution artifacts ([`query::compile`]),
/// model-generic state minimization ([`query::minimize`]), the
/// explanation verbs ([`query::witness`], [`query::counterexample`],
/// [`query::distinguish`]) that produce a concrete accepted input — or the
/// separator behind a failed inclusion/equivalence — instead of a bare
/// boolean, and the persistence verbs: [`query::save`] / [`query::load`]
/// round-trip compiled artifacts through a versioned, checksummed byte
/// format, and [`query::suspend`] / [`query::resume`] park and continue a
/// live run at the exact prefix. Multi-query execution gets its own verbs:
/// [`query::compile_set`] compiles M queries into one artifact,
/// [`query::run_multi`] / [`query::run_multi_streaming_reader`] step it
/// once per event for all M verdicts, and [`query::expr`] composes the
/// document-query zoo under boolean connectives before compilation.
pub mod query {
    pub use automata_core::query::{
        compile, compile_set, contains, contains_stream, counterexample, distinguish, equals,
        is_empty, load, minimize, resume, run_batch, run_multi, run_stream, save, subset_eq,
        suspend, witness,
    };
    pub use nwa_xml::expr;
    pub use nwa_xml::queries::{
        run_multi_streaming_reader, run_streaming_reader, run_streaming_text,
    };
}
