//! Umbrella crate for the nested-words suite.
//!
//! Re-exports every crate of the workspace so that examples and integration
//! tests can use a single dependency.

pub use nested_words;
pub use nwa;
pub use nwa_pushdown;
pub use nwa_xml;
pub use pushdown_automata;
pub use tree_automata;
pub use word_automata;
