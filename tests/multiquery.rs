//! Property tests for the multi-query subsystem: a compiled query set must
//! be *indistinguishable* from running its member queries one at a time —
//! at every prefix, on both backends, through serialization, and through
//! the combinator layer.
//!
//! The laws pinned here are the `automata_core::MultiAcceptor` contract:
//!
//! 1. **set ≡ sequential** — bit `i` of the set's verdict mask equals what
//!    a standalone run of query `i` observes, at every prefix, pending
//!    calls and pending returns included;
//! 2. **representation-free** — the product-table backend and the lockstep
//!    backend agree on the same seeds;
//! 3. **persistence** — `load(save(set)) == set` for both backends;
//! 4. **combinators** — lowering an `expr::Query` tree respects boolean
//!    semantics: `lower(a ∧ b)` accepts exactly when `lower(a)` and
//!    `lower(b)` both accept, and likewise for `∨` / `¬`.
//!
//! Cases are drawn from the suite's seeded generators (no crates.io access,
//! so no proptest); every failure is reproducible from the printed seed.

mod common;

use common::{prop_iters, random_det_nwa};
use nested_words_suite::nested_words::generate::{random_nested_word, NestedWordConfig};
use nested_words_suite::nested_words::rng::Prng;
use nested_words_suite::nwa_xml::expr::Query;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

/// Random member queries over a common 2-symbol alphabet, with mixed state
/// counts so product-state decoding exercises a genuinely mixed radix.
fn random_queries(count: usize, seed: u64) -> Vec<Nwa> {
    (0..count)
        .map(|i| random_det_nwa(2 + (i % 3), 2, seed.wrapping_mul(97).wrapping_add(i as u64)))
        .collect()
}

/// Random nested words over the same alphabet, pending edges allowed — the
/// set must track pending calls and pending returns exactly like the
/// standalone runs do.
fn random_words(count: usize, base_seed: u64) -> Vec<NestedWord> {
    let ab = Alphabet::ab();
    let cfg = NestedWordConfig {
        len: 40,
        allow_pending: true,
        ..Default::default()
    };
    (0..count as u64)
        .map(|s| random_nested_word(&ab, cfg, base_seed.wrapping_add(s)))
        .collect()
}

/// Law 1 (and law 2 via the shared loop): on both backends, the set's
/// verdict mask, conjunction view and final outcomes match per-query
/// standalone runs at every prefix of every word.
#[test]
fn set_verdicts_match_sequential_runs_at_every_prefix() {
    for seed in 0..prop_iters(6) as u64 {
        let queries = random_queries(5, seed);
        let words = random_words(8, seed);
        for backend in [QuerySetBackend::Product, QuerySetBackend::Lockstep] {
            let set = QuerySet::with_backend(&queries, backend);
            assert_eq!(set.backend(), backend);
            assert_eq!(MultiAcceptor::num_queries(&set), queries.len());
            for (wi, w) in words.iter().enumerate() {
                let events: Vec<TaggedSymbol> = w.to_tagged();
                let mut run = set.start_set();
                let mut solo: Vec<_> = queries.iter().map(|q| q.start()).collect();
                for (k, &event) in events.iter().enumerate() {
                    run.step(event);
                    let mut expected_mask = 0u64;
                    for (i, s) in solo.iter_mut().enumerate() {
                        s.step(event);
                        expected_mask |= u64::from(s.is_accepting()) << i;
                    }
                    assert_eq!(
                        run.verdicts(),
                        expected_mask,
                        "seed {seed}, {backend:?}, word {wi}, prefix {k}"
                    );
                    assert_eq!(
                        run.is_accepting(),
                        solo.iter().all(|s| s.is_accepting()),
                        "seed {seed}, {backend:?}, word {wi}, prefix {k}"
                    );
                    assert_eq!(run.stack_height(), solo[0].stack_height());
                    assert_eq!(run.peak_memory(), solo[0].peak_memory());
                }
                let outcomes = run.outcomes();
                assert_eq!(outcomes.len(), queries.len());
                for (i, q) in queries.iter().enumerate() {
                    let expected = query::run_stream(q, events.iter().copied());
                    assert_eq!(
                        outcomes[i], expected,
                        "seed {seed}, {backend:?}, word {wi}, query {i}"
                    );
                }
            }
        }
    }
}

/// Law 2, head to head: the two backends compiled from the same queries
/// produce identical verdict-mask traces — and `query::run_multi` over
/// the heuristic choice (`query::compile_set`) agrees with both.
#[test]
fn product_and_lockstep_backends_agree_on_the_same_seeds() {
    for seed in 0..prop_iters(8) as u64 {
        let queries = random_queries(4, seed);
        let product = QuerySet::with_backend(&queries, QuerySetBackend::Product);
        let lockstep = QuerySet::with_backend(&queries, QuerySetBackend::Lockstep);
        let heuristic = query::compile_set(&queries);
        for (wi, w) in random_words(6, seed ^ 0xA5A5).iter().enumerate() {
            let events: Vec<TaggedSymbol> = w.to_tagged();
            let mut p = product.start_set();
            let mut l = lockstep.start_set();
            for (k, &event) in events.iter().enumerate() {
                p.step(event);
                l.step(event);
                assert_eq!(
                    p.verdicts(),
                    l.verdicts(),
                    "seed {seed}, word {wi}, prefix {k}"
                );
            }
            assert_eq!(p.outcomes(), l.outcomes(), "seed {seed}, word {wi}");
            assert_eq!(
                query::run_multi(&heuristic, events.iter().copied()),
                p.outcomes(),
                "seed {seed}, word {wi}"
            );
        }
    }
}

/// Law 3: a set survives the facade's persistence verbs byte-exactly, on
/// both backends, and corruption is a typed error.
#[test]
fn query_sets_round_trip_through_save_and_load() {
    for seed in 0..prop_iters(10) as u64 {
        let queries = random_queries(3, seed);
        for backend in [QuerySetBackend::Product, QuerySetBackend::Lockstep] {
            let set = QuerySet::with_backend(&queries, backend);
            let bytes = query::save(&set);
            let back: QuerySet = query::load(&bytes).unwrap_or_else(|e| {
                panic!("seed {seed}, {backend:?}: load failed: {e}");
            });
            assert_eq!(back, set, "seed {seed}, {backend:?}");
            assert_eq!(back.fingerprint(), set.fingerprint());
            // The reloaded set answers identically.
            let events: Vec<TaggedSymbol> = random_words(1, seed)[0].to_tagged();
            assert_eq!(
                query::run_multi(&back, events.iter().copied()),
                query::run_multi(&set, events.iter().copied()),
                "seed {seed}, {backend:?}"
            );
            // Truncation at any tail offset is a typed error, never a panic.
            for cut in [1usize, 7, 16] {
                assert!(
                    QuerySet::load(&bytes[..bytes.len().saturating_sub(cut)]).is_err(),
                    "seed {seed}, {backend:?}, cut {cut}"
                );
            }
        }
    }
}

/// A random combinator tree over the document-query zoo.
fn random_query_expr(rng: &mut Prng, depth: usize) -> Query {
    if depth == 0 || rng.bool(0.35) {
        match rng.below(5) {
            0 => Query::contains(Symbol(rng.below(2) as u16)),
            1 => Query::in_order(vec![
                Symbol(rng.below(2) as u16),
                Symbol(rng.below(2) as u16),
            ]),
            2 => Query::depth_le(rng.below(3)),
            3 => Query::open_depth_le(rng.below(3)),
            _ => Query::within(Symbol(rng.below(2) as u16), Symbol(rng.below(2) as u16)),
        }
    } else {
        let a = random_query_expr(rng, depth - 1);
        match rng.below(3) {
            0 => a.and(random_query_expr(rng, depth - 1)),
            1 => a.or(random_query_expr(rng, depth - 1)),
            _ => a.not(),
        }
    }
}

/// The boolean reference semantics: leaves decided by their lowered
/// automata, connectives by plain logic.
fn eval_expr(q: &Query, w: &NestedWord, sigma: usize) -> bool {
    match q {
        Query::And(a, b) => eval_expr(a, w, sigma) && eval_expr(b, w, sigma),
        Query::Or(a, b) => eval_expr(a, w, sigma) || eval_expr(b, w, sigma),
        Query::Not(a) => !eval_expr(a, w, sigma),
        leaf => leaf.lower(sigma).accepts(w),
    }
}

/// Law 4: lowering a combinator tree through the `BooleanOps`
/// constructions is language-equivalent to composing the lowered leaves
/// with plain boolean logic — and the lowered trees make valid query-set
/// members.
#[test]
fn expr_lowering_matches_boolean_composition() {
    let sigma = Alphabet::ab().len();
    for seed in 0..prop_iters(12) as u64 {
        let mut rng = Prng::new(seed.wrapping_add(0x51C2));
        let exprs: Vec<Query> = (0..3).map(|_| random_query_expr(&mut rng, 2)).collect();
        let lowered: Vec<Nwa> = exprs.iter().map(|e| e.lower(sigma)).collect();
        let words = random_words(6, seed);
        for (wi, w) in words.iter().enumerate() {
            for (ei, (e, m)) in exprs.iter().zip(&lowered).enumerate() {
                assert_eq!(
                    m.accepts(w),
                    eval_expr(e, w, sigma),
                    "seed {seed}, word {wi}, expr {ei}: {e:?}"
                );
            }
        }
        // Lowered combinator queries run as a set like any other members.
        let set = query::compile_set(&lowered);
        for (wi, w) in words.iter().enumerate() {
            let events: Vec<TaggedSymbol> = w.to_tagged();
            let outcomes = query::run_multi(&set, events.iter().copied());
            for (ei, e) in exprs.iter().enumerate() {
                assert_eq!(
                    outcomes[ei].accepted,
                    eval_expr(e, w, sigma),
                    "seed {seed}, word {wi}, expr {ei}"
                );
            }
        }
    }
}
