//! Property tests for the compiled execution engines: for every model
//! implementing `Compile`, the compiled artifact must be observationally
//! equivalent to the interpreted automaton — same acceptance, same event
//! counts, same stack heights and peak memory — at every prefix, on
//! Prng-random nested words (pending calls and returns included) and on the
//! paper's Theorem-3 succinctness families.
//!
//! Cases are drawn from the suite's seeded generators (no crates.io access,
//! so no proptest); every failure is reproducible from the printed seed.
//! `NWA_PROP_ITERS` scales the iteration counts (see `tests/common`).

mod common;

use common::{prop_iters, random_det_nwa, random_nnwa_with_transitions};
use nested_words_suite::nested_words::generate::{random_nested_word, NestedWordConfig};
use nested_words_suite::nested_words::path;
use nested_words_suite::nested_words::rng::Prng;
use nested_words_suite::nwa::families::{path_family_nwa, path_family_tagged_dfa};
use nested_words_suite::nwa::joinless::joinless_from_nwa;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

fn random_words(count: usize) -> Vec<NestedWord> {
    let ab = Alphabet::ab();
    let cfg = NestedWordConfig {
        len: 40,
        allow_pending: true,
        ..Default::default()
    };
    (0..count as u64)
        .map(|seed| random_nested_word(&ab, cfg, seed))
        .collect()
}

/// Steps the interpreted and compiled runs in lockstep and asserts every
/// observable agrees at every prefix.
fn assert_runs_agree<A, C>(interpreted: &A, compiled: &C, events: &[TaggedSymbol], ctx: &str)
where
    A: StreamAcceptor,
    C: StreamAcceptor,
{
    let mut ir = interpreted.start();
    let mut cr = compiled.start();
    for (i, &event) in events.iter().enumerate() {
        ir.step(event);
        cr.step(event);
        assert_eq!(ir.is_accepting(), cr.is_accepting(), "{ctx}, prefix {i}");
        assert_eq!(ir.stack_height(), cr.stack_height(), "{ctx}, prefix {i}");
        assert_eq!(ir.peak_memory(), cr.peak_memory(), "{ctx}, prefix {i}");
        assert_eq!(ir.steps(), cr.steps(), "{ctx}, prefix {i}");
    }
}

/// Compiled ≡ interpreted for random deterministic NWAs: prefix-exact via
/// the streaming protocol, and outcome-exact via the bulk runner.
#[test]
fn compiled_nwa_equals_interpreted_on_random_words() {
    let words = random_words(prop_iters(60));
    for seed in 0..prop_iters(5) as u64 {
        let m = random_det_nwa(4, 2, seed);
        let c = query::compile(&m);
        for (i, w) in words.iter().enumerate() {
            let events = w.to_tagged();
            assert_runs_agree(&m, &c, &events, &format!("nwa seed {seed}, word {i}"));
            assert_eq!(
                c.run_tagged(&events),
                query::run_stream(&m, events.iter().copied()),
                "bulk: nwa seed {seed}, word {i}"
            );
        }
    }
}

/// Compiled ≡ interpreted for random nondeterministic NWAs (the memoized
/// summary engine against the on-the-fly subset construction). One compiled
/// artifact serves every word, so later words run mostly on memoized rows —
/// exactly the cache path that must stay exact.
#[test]
fn compiled_nnwa_equals_interpreted_on_random_words() {
    let words = random_words(prop_iters(60));
    for seed in 0..prop_iters(4) as u64 {
        let n = random_nnwa_with_transitions(3, 2, 9, seed);
        let c = query::compile(&n);
        for (i, w) in words.iter().enumerate() {
            let events = w.to_tagged();
            assert_runs_agree(&n, &c, &events, &format!("nnwa seed {seed}, word {i}"));
        }
    }
}

/// Compiled ≡ interpreted for joinless NWAs (the same memoized engine over
/// the mode-split return relation).
#[test]
fn compiled_joinless_equals_interpreted_on_random_words() {
    let words = random_words(prop_iters(40));
    for seed in 0..prop_iters(3) as u64 {
        let j = joinless_from_nwa(&random_nnwa_with_transitions(2, 2, 6, seed));
        let c = query::compile(&j);
        for (i, w) in words.iter().enumerate() {
            let events = w.to_tagged();
            assert_runs_agree(&j, &c, &events, &format!("joinless seed {seed}, word {i}"));
        }
    }
}

/// Compiled ≡ interpreted for tagged-alphabet DFAs.
#[test]
fn compiled_tagged_dfa_equals_interpreted_on_random_words() {
    let sigma = 2usize;
    let words = random_words(prop_iters(60));
    let mut rng = Prng::new(0xC0DE);
    for seed in 0..prop_iters(5) {
        let mut d = Dfa::new(3, 3 * sigma, 0);
        for q in 0..3 {
            d.set_accepting(q, rng.bool(0.5));
            for a in 0..3 * sigma {
                d.set_transition(q, a, rng.below(3));
            }
        }
        let c = query::compile(&d);
        for (i, w) in words.iter().enumerate() {
            let events = w.to_tagged();
            assert_runs_agree(&d, &c, &events, &format!("dfa seed {seed}, word {i}"));
            assert_eq!(
                c.run_tagged(&events).accepted,
                query::contains_stream(&d, events.iter().copied()),
                "bulk: dfa seed {seed}, word {i}"
            );
        }
    }
}

/// The Theorem-3 succinctness family: the O(s)-state NWA and the 2^s-state
/// tagged DFA both compile, and both compiled artifacts agree with their
/// interpreted sources on members of L_s, near-misses, and random words.
#[test]
fn compiled_engines_agree_on_theorem3_families() {
    let ab = Alphabet::ab();
    let cfg = NestedWordConfig {
        len: 30,
        allow_pending: true,
        ..Default::default()
    };
    for s in 1..=4usize {
        let nwa = path_family_nwa(s);
        let dfa = path_family_tagged_dfa(s);
        let cn = query::compile(&nwa);
        let cd = query::compile(&dfa);

        // Members: every path word of length s; near-misses: lengths s±1.
        let mut inputs: Vec<NestedWord> = Vec::new();
        for len in [s.saturating_sub(1), s, s + 1] {
            for bits in 0..1usize << len {
                let word: Vec<Symbol> =
                    (0..len).map(|i| Symbol(((bits >> i) & 1) as u16)).collect();
                inputs.push(path::path(&word));
            }
        }
        for seed in 0..prop_iters(20) as u64 {
            inputs.push(random_nested_word(&ab, cfg, seed));
        }

        for (i, w) in inputs.iter().enumerate() {
            let events = w.to_tagged();
            let expected = query::contains(&nwa, w);
            assert_eq!(
                query::contains_stream(&cn, events.iter().copied()),
                expected,
                "s = {s}, input {i}: compiled NWA disagrees"
            );
            assert_eq!(
                cn.run_tagged(&events).accepted,
                expected,
                "s = {s}, input {i}: bulk compiled NWA disagrees"
            );
            assert_eq!(
                query::contains_stream(&cd, events.iter().copied()),
                query::contains_stream(&dfa, events.iter().copied()),
                "s = {s}, input {i}: compiled DFA disagrees with interpreted DFA"
            );
        }
    }
}

/// `query::compile` round-trips through the trait object the same way the
/// inherent method does, and compiled artifacts outlive their sources.
#[test]
fn compiled_artifacts_are_self_contained() {
    let m = random_det_nwa(3, 2, 42);
    let c = query::compile(&m);
    let words = random_words(10);
    let expected: Vec<bool> = words.iter().map(|w| query::contains(&m, w)).collect();
    drop(m);
    for (w, &e) in words.iter().zip(&expected) {
        assert_eq!(query::contains_stream(&c, w.to_tagged()), e);
    }
}
