//! Property tests for the `automata_core::Minimize` trait layer: every
//! implementation must preserve the language exactly and be idempotent, and
//! the Theorem 3 minimal-DFA sizes are pinned to their closed form.
//!
//! As everywhere in the suite, the randomized cases are drawn from the
//! seeded `nested_words::rng::Prng` / `nested_words::generate` sources (no
//! proptest in this environment); failures reproduce from the printed seed.

mod common;

use common::{prop_iters, random_det_nwa, random_dfa, random_nnwa, random_stepwise};
use nested_words_suite::nested_words::generate::{
    random_nested_word, random_tree, NestedWordConfig,
};
use nested_words_suite::nested_words::rng::Prng;
use nested_words_suite::nwa::families::theorem3_sweep;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

/// `query::minimize` preserves the language of DFAs (checked both by the
/// `Decide`-level equivalence and on random words), never grows them, and is
/// idempotent.
#[test]
fn minimize_laws_dfa() {
    let mut rng = Prng::new(0xD1A);
    for seed in 0..prop_iters(20) as u64 {
        let d = random_dfa(6, 2, seed);
        let m = query::minimize(&d);
        assert!(m.num_states() <= d.num_states(), "seed {seed}");
        assert!(query::equals(&d, &m), "seed {seed}");
        for _ in 0..30 {
            let w: Vec<usize> = (0..rng.below(25)).map(|_| rng.below(2)).collect();
            assert_eq!(d.accepts(&w), m.accepts(&w), "seed {seed} word {w:?}");
        }
        let mm = query::minimize(&m);
        assert_eq!(m.num_states(), mm.num_states(), "seed {seed}");
        assert!(query::equals(&m, &mm), "seed {seed}");
    }
}

/// The same three laws for the congruence reduction on deterministic nested
/// word automata, on randomized nested words with pending calls and returns.
#[test]
fn minimize_laws_nwa() {
    let ab = Alphabet::ab();
    let cfg = NestedWordConfig {
        len: 35,
        allow_pending: true,
        ..Default::default()
    };
    for seed in 0..prop_iters(10) as u64 {
        let n = random_det_nwa(4, 2, seed);
        let m = query::minimize(&n);
        assert!(m.num_states() <= n.num_states(), "seed {seed}");
        assert!(query::equals(&n, &m), "seed {seed}");
        for wseed in 0..30u64 {
            let w = random_nested_word(&ab, cfg, 1000 * seed + wseed);
            assert_eq!(n.accepts(&w), m.accepts(&w), "seed {seed}/{wseed}");
        }
        let mm = query::minimize(&m);
        assert_eq!(m.num_states(), mm.num_states(), "seed {seed}");
        assert!(query::equals(&m, &mm), "seed {seed}");
    }
}

/// The minimization laws for *nondeterministic* NWAs, which minimize by
/// determinize-then-reduce (closing the last `Minimize` hole in the
/// capability matrix): language preservation (by `Decide`-level equivalence
/// and on random nested words with pending edges) and idempotence. The
/// non-growth law is deliberately absent — determinization can blow up
/// beyond the nondeterministic state count, which is the succinctness gap
/// itself, so only the *minimized* form is required to be stable.
#[test]
fn minimize_laws_nnwa() {
    let ab = Alphabet::ab();
    let cfg = NestedWordConfig {
        len: 35,
        allow_pending: true,
        ..Default::default()
    };
    for seed in 0..prop_iters(10) as u64 {
        let n = random_nnwa(4, 2, seed);
        let m = query::minimize(&n);
        assert!(query::equals(&n, &m), "seed {seed}");
        for wseed in 0..30u64 {
            let w = random_nested_word(&ab, cfg, 1000 * seed + wseed);
            assert_eq!(n.accepts(&w), m.accepts(&w), "seed {seed}/{wseed}");
        }
        let mm = query::minimize(&m);
        assert_eq!(
            Minimize::num_states(&m),
            Minimize::num_states(&mm),
            "seed {seed}"
        );
        assert!(query::equals(&m, &mm), "seed {seed}");
    }
}

/// The same three laws for deterministic stepwise tree automata, on
/// randomized unranked trees.
#[test]
fn minimize_laws_stepwise() {
    let ab = Alphabet::ab();
    let mut rng = Prng::new(0x57E9);
    for seed in 0..prop_iters(20) as u64 {
        let ta = random_stepwise(4, 2, seed);
        let m = query::minimize(&ta);
        assert!(m.num_states() <= ta.num_states(), "seed {seed}");
        assert!(query::equals(&ta, &m), "seed {seed}");
        for tseed in 0..25u64 {
            let t = random_tree(&ab, 1 + rng.below(25), 3, 1000 * seed + tseed);
            assert_eq!(ta.accepts(&t), m.accepts(&t), "seed {seed}/{tseed}");
        }
        let mm = query::minimize(&m);
        assert_eq!(m.num_states(), mm.num_states(), "seed {seed}");
        assert!(query::equals(&m, &mm), "seed {seed}");
    }
}

/// Theorem 3's minimal DFA sizes over the tagged alphabet Σ̂, pinned to the
/// exact closed form for s ≤ 8: the minimal DFA for `nw(L_s)` has
/// `3·2^s − 1` states — the `2^{s+1} − 1` descent stacks of length ≤ s, the
/// `2^s − 1` ascent stacks of length < s, and one dead state — which is the
/// `> 2^s` blow-up the theorem asserts, while the NWA stays at `s + 8`
/// states.
#[test]
fn theorem3_minimal_dfa_counts_are_exact() {
    for row in theorem3_sweep(8) {
        let s = row.s;
        assert_eq!(
            row.baseline_states,
            3 * (1 << s) - 1,
            "s={s}: minimal DFA states"
        );
        assert!(row.baseline_states >= (1 << s), "s={s}: Theorem 3 bound");
        assert_eq!(row.succinct_states, s + 8, "s={s}: NWA stays linear");
    }
}

/// The trait entry point and the model-specific minimizers agree — the
/// facade does not change what "minimal" means.
#[test]
fn query_minimize_matches_inherent_minimizers() {
    for seed in 0..prop_iters(10) as u64 {
        let d = random_dfa(5, 2, seed);
        assert_eq!(
            query::minimize(&d).num_states(),
            d.minimize().num_states(),
            "seed {seed}"
        );
        let ta = random_stepwise(3, 2, seed);
        assert_eq!(
            query::minimize(&ta).num_states(),
            ta.minimize().num_states(),
            "seed {seed}"
        );
    }
}
