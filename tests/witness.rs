//! Property tests for the `automata_core::Witness` layer: every
//! implementation must be *sound* (a returned input is accepted, validated
//! by feeding it back through `query::contains`) and *complete* (a witness
//! exists if and only if `query::is_empty` says the language is non-empty),
//! and the derived `query::counterexample` / `query::distinguish` verbs
//! must return inputs accepted by exactly the side they claim to separate.
//!
//! As everywhere in the suite, randomized cases come from the seeded
//! `nested_words::rng::Prng` generators in `tests/common`; failures
//! reproduce from the printed seed.

mod common;

use common::{prop_iters, random_det_nwa, random_dfa, random_nnwa, random_stepwise};
use nested_words_suite::nwa::joinless::joinless_from_nwa;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

/// Every tagged word of exactly `len` positions over `sigma` symbols.
fn all_tagged_words(sigma: usize, len: usize) -> Vec<Vec<TaggedSymbol>> {
    let mut words: Vec<Vec<TaggedSymbol>> = vec![Vec::new()];
    for _ in 0..len {
        let mut next = Vec::new();
        for w in &words {
            for s in 0..sigma {
                let sym = Symbol(s as u16);
                for tag in [
                    TaggedSymbol::Call(sym),
                    TaggedSymbol::Internal(sym),
                    TaggedSymbol::Return(sym),
                ] {
                    let mut w2 = w.clone();
                    w2.push(tag);
                    next.push(w2);
                }
            }
        }
        words = next;
    }
    words
}

/// `query::witness` on deterministic NWAs is sound, complete, and shortest:
/// the returned word is accepted, a witness exists iff the language is
/// non-empty, and (checked exhaustively for short witnesses) no strictly
/// shorter nested word is accepted.
#[test]
fn witness_nwa_sound_complete_and_shortest() {
    for seed in 0..prop_iters(12) as u64 {
        let mut a = random_det_nwa(3, 2, seed);
        if seed % 4 == 0 {
            // force some genuinely empty languages into the mix
            for q in 0..3 {
                a.set_accepting(q, false);
            }
        }
        match query::witness(&a) {
            Some(w) => {
                assert!(query::contains(&a, &w), "seed {seed}: witness rejected");
                assert!(!query::is_empty(&a), "seed {seed}");
                if w.len() <= 3 {
                    for shorter_len in 0..w.len() {
                        for tagged in all_tagged_words(2, shorter_len) {
                            let cand = NestedWord::from_tagged(&tagged);
                            assert!(
                                !query::contains(&a, &cand),
                                "seed {seed}: accepted word shorter than the witness"
                            );
                        }
                    }
                }
            }
            None => assert!(query::is_empty(&a), "seed {seed}: no witness, not empty"),
        }
    }
}

/// The same soundness/completeness for nondeterministic NWAs, directly on
/// the transition relations (no determinization). The sparse generator
/// leaves many languages empty, so both sides of the iff are exercised.
#[test]
fn witness_nnwa_sound_and_complete() {
    let mut nonempty = 0usize;
    let mut empty = 0usize;
    for seed in 0..prop_iters(60) as u64 {
        let a = random_nnwa(3, 2, seed);
        match query::witness(&a) {
            Some(w) => {
                nonempty += 1;
                assert!(query::contains(&a, &w), "seed {seed}: witness rejected");
                assert!(!query::is_empty(&a), "seed {seed}");
            }
            None => {
                empty += 1;
                assert!(query::is_empty(&a), "seed {seed}: no witness, not empty");
            }
        }
    }
    assert!(nonempty > 0, "generator produced no non-empty languages");
    assert!(empty > 0, "generator produced no empty languages");
}

/// Witnesses for joinless NWAs, extracted through the exact `to_nnwa`
/// return-relation expansion, are accepted by the joinless reference
/// semantics itself, and exist iff the language is non-empty.
#[test]
fn witness_joinless_sound_and_complete() {
    for seed in 0..prop_iters(20) as u64 {
        let j = joinless_from_nwa(&random_nnwa(2, 2, seed));
        match query::witness(&j) {
            Some(w) => {
                assert!(query::contains(&j, &w), "seed {seed}: witness rejected");
                assert!(!query::is_empty(&j), "seed {seed}");
            }
            None => assert!(query::is_empty(&j), "seed {seed}: no witness, not empty"),
        }
    }
}

/// Soundness and completeness for DFAs (the rewired `find_accepted_word`)
/// and stepwise tree automata (bottom-up witness trees).
#[test]
fn witness_dfa_and_stepwise_sound_and_complete() {
    for seed in 0..prop_iters(20) as u64 {
        let mut d = random_dfa(4, 2, seed);
        if seed % 4 == 0 {
            for q in 0..4 {
                d.set_accepting(q, false);
            }
        }
        match query::witness(&d) {
            Some(w) => {
                assert!(query::contains(&d, &w[..]), "seed {seed}");
                assert!(!query::is_empty(&d), "seed {seed}");
            }
            None => assert!(query::is_empty(&d), "seed {seed}"),
        }

        let mut ta = random_stepwise(3, 2, seed);
        if seed % 4 == 1 {
            for q in 0..3 {
                ta.set_accepting(q, false);
            }
        }
        match query::witness(&ta) {
            Some(t) => {
                assert!(!t.is_empty(), "seed {seed}: empty tree is never accepted");
                assert!(query::contains(&ta, &t), "seed {seed}");
                assert!(!query::is_empty(&ta), "seed {seed}");
            }
            None => assert!(query::is_empty(&ta), "seed {seed}"),
        }
    }
}

/// `query::distinguish` on random pairs of deterministic NWAs returns a
/// separator accepted by exactly one side iff the automata are
/// inequivalent, and `query::counterexample` explains failed inclusions.
#[test]
fn distinguish_separates_inequivalent_nwas() {
    let mut separated = 0usize;
    for seed in 0..prop_iters(10) as u64 {
        let a = random_det_nwa(3, 2, seed);
        let b = random_det_nwa(3, 2, seed + 500);
        match query::distinguish(&a, &b) {
            Some(w) => {
                separated += 1;
                assert!(!query::equals(&a, &b), "seed {seed}");
                assert_ne!(
                    query::contains(&a, &w),
                    query::contains(&b, &w),
                    "seed {seed}: separator must be accepted by exactly one side"
                );
            }
            None => assert!(query::equals(&a, &b), "seed {seed}"),
        }
        match query::counterexample(&a, &b) {
            Some(w) => {
                assert!(!query::subset_eq(&a, &b), "seed {seed}");
                assert!(query::contains(&a, &w), "seed {seed}");
                assert!(!query::contains(&b, &w), "seed {seed}");
            }
            None => assert!(query::subset_eq(&a, &b), "seed {seed}"),
        }
    }
    assert!(separated > 0, "every random pair was equivalent");
}

/// The same separator law for nondeterministic NWAs (tiny instances: the
/// derived verbs complement, hence determinize, both operands).
#[test]
fn distinguish_separates_inequivalent_nnwas() {
    let mut separated = 0usize;
    for seed in 0..prop_iters(8) as u64 {
        let a = random_nnwa(2, 1, seed);
        let b = random_nnwa(2, 1, seed + 500);
        match query::distinguish(&a, &b) {
            Some(w) => {
                separated += 1;
                assert_ne!(
                    query::contains(&a, &w),
                    query::contains(&b, &w),
                    "seed {seed}: separator must be accepted by exactly one side"
                );
            }
            None => assert!(query::equals(&a, &b), "seed {seed}"),
        }
    }
    assert!(separated > 0, "every random pair was equivalent");
}

/// The separator laws across the remaining `Witness + BooleanOps` models:
/// DFAs over flat words and stepwise automata over trees.
#[test]
fn distinguish_separates_inequivalent_dfas_and_stepwise() {
    for seed in 0..prop_iters(15) as u64 {
        let a = random_dfa(4, 2, seed);
        let b = random_dfa(3, 2, seed + 500);
        match query::distinguish(&a, &b) {
            Some(w) => assert_ne!(
                query::contains(&a, &w[..]),
                query::contains(&b, &w[..]),
                "seed {seed}"
            ),
            None => assert!(query::equals(&a, &b), "seed {seed}"),
        }

        let ta = random_stepwise(3, 2, seed);
        let tb = random_stepwise(2, 2, seed + 500);
        match query::distinguish(&ta, &tb) {
            Some(t) => assert_ne!(
                query::contains(&ta, &t),
                query::contains(&tb, &t),
                "seed {seed}"
            ),
            None => assert!(query::equals(&ta, &tb), "seed {seed}"),
        }
    }
}

/// The witness layer agrees with the decision layer on the paper's
/// succinctness families: the Theorem 3 automata for different `s` are
/// inequivalent, and the separator is a path word of exactly one of the two
/// lengths. (Small `s`: the derived verbs run the witness engine on the
/// product with the complement, ~90 states here.)
#[test]
fn distinguish_explains_theorem3_family_inequivalence() {
    use nested_words_suite::nwa::families::{path_family_contains, path_family_nwa};
    let a1 = path_family_nwa(1);
    let a2 = path_family_nwa(2);
    let w = query::distinguish(&a1, &a2).expect("L_1 ≠ L_2");
    assert_ne!(query::contains(&a1, &w), query::contains(&a2, &w));
    assert!(path_family_contains(&w, 1) || path_family_contains(&w, 2));
    assert!(query::distinguish(&a1, &a1).is_none());
}
