//! Integration test reproducing Figure 1 of the paper: the three sample
//! nested words, their tagged encodings, and the tree view of n3.

use nested_words_suite::prelude::*;

#[test]
fn figure1_nested_words() {
    let mut ab = Alphabet::ab();
    let n1 = parse_nested_word("<a <b a a> <b a b> a> <a b a a>", &mut ab).unwrap();
    let n2 = parse_nested_word("a a> <b a a> <a <a", &mut ab).unwrap();
    let n3 = parse_nested_word("<a <a a> <b b> a>", &mut ab).unwrap();

    // n1: well-matched, length 12, depth 2
    assert_eq!(n1.len(), 12);
    assert_eq!(n1.depth(), 2);
    assert!(n1.is_well_matched());
    assert!(!n1.is_rooted());

    // n2: one unmatched return, two unmatched calls
    assert!(!n2.is_well_matched());
    assert_eq!(
        (0..n2.len()).filter(|&i| n2.is_pending_return(i)).count(),
        1
    );
    assert_eq!((0..n2.len()).filter(|&i| n2.is_pending_call(i)).count(), 2);

    // n3: rooted, and a tree word encoding a(a(), b())
    assert!(n3.is_rooted());
    let tree = OrderedTree::from_nested_word(&n3).unwrap();
    assert_eq!(tree.display(&ab), "a(a(),b())");

    // the tagged encodings round-trip through the text syntax
    for (text, word) in [
        ("<a <b a a> <b a b> a> <a b a a>", &n1),
        ("a a> <b a a> <a <a", &n2),
        ("<a <a a> <b b> a>", &n3),
    ] {
        assert_eq!(display_nested_word(word, &ab), text);
    }
}

#[test]
fn figure1_counts_of_matching_relations() {
    // §2.2: there are exactly 3^ℓ matching relations and 3^ℓ·|Σ|^ℓ nested
    // words of length ℓ. Verify by enumeration for ℓ = 4 over {a, b}.
    use std::collections::HashSet;
    let sigma = 2usize;
    let len = 4usize;
    let mut words = HashSet::new();
    let mut matchings = HashSet::new();
    let total = (3 * sigma).pow(len as u32);
    for code in 0..total {
        let mut c = code;
        let mut tagged = Vec::new();
        for _ in 0..len {
            tagged.push(TaggedSymbol::from_tagged_index(c % (3 * sigma), sigma));
            c /= 3 * sigma;
        }
        let w = NestedWord::from_tagged(&tagged);
        matchings.insert(w.matching().clone());
        words.insert(w);
    }
    assert_eq!(matchings.len(), 3usize.pow(len as u32));
    assert_eq!(words.len(), 3usize.pow(len as u32) * sigma.pow(len as u32));
}
