//! Seeded random-automaton generators shared by the integration tests
//! (`tests/properties.rs`, `tests/streaming.rs`, `tests/minimize.rs`). The
//! build environment has no crates.io access, so instead of proptest the
//! property tests draw deterministic cases from these generators; every
//! failure is reproducible from the printed seed.
//!
//! Each test binary compiles this module separately and uses only some of
//! the generators, hence the file-wide `dead_code` allowance.

#![allow(dead_code)]

use nested_words_suite::nested_words::rng::Prng;
use nested_words_suite::prelude::*;

/// Iteration budget for the Prng property suites: `base` scaled by the
/// `NWA_PROP_ITERS` environment variable (if set to a positive integer).
/// Local runs and the per-PR CI jobs use the bases as written; the weekly
/// scheduled CI job sets `NWA_PROP_ITERS=10` to sweep ten times as many
/// seeds through the same properties.
pub fn prop_iters(base: usize) -> usize {
    std::env::var("NWA_PROP_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&m| m > 0)
        .map_or(base, |m| base * m)
}

/// A random complete deterministic NWA: every transition drawn uniformly,
/// every state accepting with probability 1/2.
pub fn random_det_nwa(num_states: usize, sigma: usize, seed: u64) -> Nwa {
    let mut rng = Prng::new(seed);
    let mut m = Nwa::new(num_states, sigma, rng.below(num_states));
    for q in 0..num_states {
        m.set_accepting(q, rng.bool(0.5));
        for a in 0..sigma {
            let a = Symbol(a as u16);
            m.set_internal(q, a, rng.below(num_states));
            m.set_call(q, a, rng.below(num_states), rng.below(num_states));
            for h in 0..num_states {
                m.set_return(q, h, a, rng.below(num_states));
            }
        }
    }
    m
}

/// A random complete DFA.
pub fn random_dfa(num_states: usize, num_symbols: usize, seed: u64) -> Dfa {
    let mut rng = Prng::new(seed);
    let mut d = Dfa::new(num_states, num_symbols, rng.below(num_states));
    for q in 0..num_states {
        d.set_accepting(q, rng.bool(0.5));
        for a in 0..num_symbols {
            d.set_transition(q, a, rng.below(num_states));
        }
    }
    d
}

/// A random deterministic stepwise tree automaton.
pub fn random_stepwise(num_states: usize, sigma: usize, seed: u64) -> DetStepwiseTA {
    let mut rng = Prng::new(seed);
    let mut ta = DetStepwiseTA::new(num_states, sigma);
    for a in 0..sigma {
        ta.set_init(Symbol(a as u16), rng.below(num_states));
    }
    for q in 0..num_states {
        ta.set_accepting(q, rng.bool(0.5));
        for r in 0..num_states {
            ta.set_combine(q, r, rng.below(num_states));
        }
    }
    ta
}

/// A random sparse nondeterministic NWA. Sparseness is deliberate: several
/// property tests complement (hence determinize) these automata, and the
/// summary-set construction is exponential in the transition density. The
/// sparse draw also leaves a healthy fraction of instances with an empty
/// language, which the witness completeness properties need.
pub fn random_nnwa(num_states: usize, sigma: usize, seed: u64) -> Nnwa {
    random_nnwa_with_transitions(num_states, sigma, num_states + 2, seed)
}

/// [`random_nnwa`] with an explicit transition budget, for tests that want
/// denser automata (e.g. the streaming suite, which never determinizes).
pub fn random_nnwa_with_transitions(
    num_states: usize,
    sigma: usize,
    transitions: usize,
    seed: u64,
) -> Nnwa {
    let mut rng = Prng::new(seed);
    let mut n = Nnwa::new(num_states, sigma);
    n.add_initial(rng.below(num_states));
    n.add_accepting(rng.below(num_states));
    for _ in 0..transitions {
        let s = Symbol(rng.below(sigma) as u16);
        match rng.below(3) {
            0 => n.add_internal(rng.below(num_states), s, rng.below(num_states)),
            1 => n.add_call(
                rng.below(num_states),
                s,
                rng.below(num_states),
                rng.below(num_states),
            ),
            _ => n.add_return(
                rng.below(num_states),
                rng.below(num_states),
                s,
                rng.below(num_states),
            ),
        }
    }
    n
}
