//! Property-based tests (proptest) for the core data model and the key
//! automaton constructions.

use nested_words::ops::{concat, prefix, reverse, suffix};
use nested_words::{NestedWord, Symbol, TaggedSymbol};
use proptest::prelude::*;

/// Strategy producing arbitrary tagged words over {a, b}.
fn tagged_word(max_len: usize) -> impl Strategy<Value = Vec<TaggedSymbol>> {
    prop::collection::vec((0..3usize, 0..2u16), 0..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(kind, sym)| match kind {
                0 => TaggedSymbol::Call(Symbol(sym)),
                1 => TaggedSymbol::Internal(Symbol(sym)),
                _ => TaggedSymbol::Return(Symbol(sym)),
            })
            .collect()
    })
}

proptest! {
    /// w_nw and nw_w are mutually inverse (§2.2): the tagged encoding is a
    /// bijection.
    #[test]
    fn tagged_encoding_roundtrips(tagged in tagged_word(60)) {
        let word = NestedWord::from_tagged(&tagged);
        prop_assert_eq!(word.to_tagged(), tagged);
    }

    /// Reversal is an involution (§2.4).
    #[test]
    fn reverse_is_an_involution(tagged in tagged_word(60)) {
        let word = NestedWord::from_tagged(&tagged);
        prop_assert_eq!(reverse(&reverse(&word)), word);
    }

    /// Splitting at any position and concatenating recovers the word (§2.4).
    #[test]
    fn prefix_suffix_concat_roundtrips(tagged in tagged_word(40), split in 0usize..41) {
        let word = NestedWord::from_tagged(&tagged);
        let split = split.min(word.len());
        let rebuilt = concat(&prefix(&word, split), &suffix(&word, split));
        prop_assert_eq!(rebuilt, word);
    }

    /// Depth never exceeds half the length, and reversal preserves it.
    #[test]
    fn depth_bounds_and_reverse_invariance(tagged in tagged_word(60)) {
        let word = NestedWord::from_tagged(&tagged);
        prop_assert!(word.depth() <= word.len() / 2);
        prop_assert_eq!(reverse(&word).depth(), word.depth());
        prop_assert_eq!(reverse(&word).is_well_matched(), word.is_well_matched());
    }

    /// The Theorem 1 weak construction preserves the language of the
    /// matching-labels automaton on arbitrary nested words.
    #[test]
    fn weak_construction_language_preservation(tagged in tagged_word(30)) {
        let a = Symbol(0);
        let b = Symbol(1);
        let mut m = nwa::automaton::Nwa::new(4, 2, 0);
        m.set_accepting(0, true);
        m.set_all_transitions_to(3, 3);
        m.set_internal(0, a, 0);
        m.set_internal(0, b, 0);
        m.set_call(0, a, 0, 1);
        m.set_call(0, b, 0, 2);
        for q in [1usize, 2] {
            m.set_all_transitions_to(q, 3);
        }
        for h in 0..4usize {
            for (sym, want) in [(a, 1usize), (b, 2usize)] {
                m.set_return(0, h, sym, if h == want { 0 } else { 3 });
            }
        }
        let weak = nwa::weak::to_weak(&m);
        let word = NestedWord::from_tagged(&tagged);
        prop_assert_eq!(m.accepts(&word), weak.accepts(&word));
    }

    /// Tree encoding round-trips: every randomly generated tree satisfies
    /// nw_t(t_nw(t)) = t.
    #[test]
    fn tree_encoding_roundtrips(seed in 0u64..10_000, size in 1usize..40) {
        let ab = nested_words::Alphabet::with_size(3);
        let tree = nested_words::generate::random_tree(&ab, size, 4, seed);
        let word = tree.to_nested_word();
        prop_assert!(nested_words::tree::is_tree_word(&word) || tree.is_empty());
        let back = nested_words::OrderedTree::from_nested_word(&word).unwrap();
        prop_assert_eq!(back, tree);
    }
}
