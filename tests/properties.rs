//! Property-based tests for the core data model, the key automaton
//! constructions, and the laws of the unified `Decide`/`BooleanOps`/
//! `Acceptor` trait layer.
//!
//! The build environment has no crates.io access, so instead of proptest the
//! tests draw deterministic pseudo-random cases from the suite's own seeded
//! generators (`nested_words::generate`, `nested_words::rng::Prng`); every
//! failure is reproducible from the printed seed.

mod common;

use common::{prop_iters, random_det_nwa, random_dfa, random_nnwa, random_stepwise};
use nested_words_suite::nested_words::generate::{
    random_nested_word, random_tree, NestedWordConfig,
};
use nested_words_suite::nested_words::ops::{concat, prefix, reverse, suffix};
use nested_words_suite::nested_words::rng::Prng;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

/// Draws an arbitrary tagged word over {a, b} of length < `max_len`,
/// mirroring the proptest strategy the seed used: any mix of calls,
/// internals and returns, including ill-matched ones.
fn arbitrary_tagged(rng: &mut Prng, max_len: usize) -> Vec<TaggedSymbol> {
    let len = rng.below(max_len);
    (0..len)
        .map(|_| {
            let sym = Symbol(rng.below(2) as u16);
            match rng.below(3) {
                0 => TaggedSymbol::Call(sym),
                1 => TaggedSymbol::Internal(sym),
                _ => TaggedSymbol::Return(sym),
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Data-model properties (carried over from the seed's proptest suite)
// --------------------------------------------------------------------------

/// w_nw and nw_w are mutually inverse (§2.2): the tagged encoding is a
/// bijection.
#[test]
fn tagged_encoding_roundtrips() {
    let mut rng = Prng::new(0xA11CE);
    for _ in 0..prop_iters(200) {
        let tagged = arbitrary_tagged(&mut rng, 61);
        let word = NestedWord::from_tagged(&tagged);
        assert_eq!(word.to_tagged(), tagged);
    }
}

/// Reversal is an involution (§2.4).
#[test]
fn reverse_is_an_involution() {
    let mut rng = Prng::new(0xB0B);
    for _ in 0..prop_iters(200) {
        let word = NestedWord::from_tagged(&arbitrary_tagged(&mut rng, 61));
        assert_eq!(reverse(&reverse(&word)), word);
    }
}

/// Splitting at any position and concatenating recovers the word (§2.4).
#[test]
fn prefix_suffix_concat_roundtrips() {
    let mut rng = Prng::new(0xC0FFEE);
    for _ in 0..prop_iters(200) {
        let word = NestedWord::from_tagged(&arbitrary_tagged(&mut rng, 41));
        let split = if word.is_empty() {
            0
        } else {
            rng.below(word.len() + 1)
        };
        let rebuilt = concat(&prefix(&word, split), &suffix(&word, split));
        assert_eq!(rebuilt, word);
    }
}

/// Depth never exceeds half the length, and reversal preserves depth and
/// well-matchedness.
#[test]
fn depth_bounds_and_reverse_invariance() {
    let mut rng = Prng::new(0xD00D);
    for _ in 0..prop_iters(200) {
        let word = NestedWord::from_tagged(&arbitrary_tagged(&mut rng, 61));
        assert!(word.depth() <= word.len() / 2);
        assert_eq!(reverse(&word).depth(), word.depth());
        assert_eq!(reverse(&word).is_well_matched(), word.is_well_matched());
    }
}

/// The Theorem 1 weak construction preserves the language of the
/// matching-labels automaton on arbitrary nested words.
#[test]
fn weak_construction_language_preservation() {
    let a = Symbol(0);
    let b = Symbol(1);
    let mut builder = NwaBuilder::new(4, 2, 0)
        .accepting(0)
        .sink(3)
        .all_transitions(1, 3)
        .all_transitions(2, 3)
        .internal(0, a, 0)
        .internal(0, b, 0)
        .call(0, a, 0, 1)
        .call(0, b, 0, 2);
    for h in 0..4usize {
        for (sym, want) in [(a, 1usize), (b, 2usize)] {
            builder = builder.ret(0, h, sym, if h == want { 0 } else { 3 });
        }
    }
    let m = builder.build();
    let weak = nested_words_suite::nwa::weak::to_weak(&m);
    let mut rng = Prng::new(0x7EA);
    for _ in 0..prop_iters(100) {
        let word = NestedWord::from_tagged(&arbitrary_tagged(&mut rng, 31));
        assert_eq!(
            query::contains(&m, &word),
            query::contains(&weak, &word),
            "word {:?}",
            word.to_tagged()
        );
    }
}

/// Tree encoding round-trips: every randomly generated tree satisfies
/// nw_t(t_nw(t)) = t.
#[test]
fn tree_encoding_roundtrips() {
    let ab = Alphabet::with_size(3);
    let mut rng = Prng::new(0x72EE);
    for seed in 0..prop_iters(200) as u64 {
        let size = 1 + rng.below(39);
        let tree = random_tree(&ab, size, 4, seed);
        let word = tree.to_nested_word();
        assert!(nested_words_suite::nested_words::tree::is_tree_word(&word) || tree.is_empty());
        let back = OrderedTree::from_nested_word(&word).unwrap();
        assert_eq!(back, tree);
    }
}

// --------------------------------------------------------------------------
// Decide laws across models
// --------------------------------------------------------------------------

/// `equals(a, complement(complement(a)))` for deterministic NWAs.
#[test]
fn decide_law_double_complement_nwa() {
    for seed in 0..prop_iters(10) as u64 {
        let a = random_det_nwa(3, 2, seed);
        assert!(
            query::equals(&a, &a.complement().complement()),
            "seed {seed}"
        );
    }
}

/// `subset_eq(intersect(a, b), a)` for deterministic NWAs, and intersection
/// with the complement is empty. Every negative decision now explains
/// itself: a failed inclusion yields a counterexample accepted by exactly
/// the left side, a failed equivalence a separator accepted by exactly one
/// side, and the explanation exists if and only if the decision failed.
#[test]
fn decide_law_intersection_shrinks_nwa() {
    for seed in 0..prop_iters(10) as u64 {
        let a = random_det_nwa(3, 2, seed);
        let b = random_det_nwa(3, 2, seed + 1000);
        assert!(query::subset_eq(&a.intersect(&b), &a), "seed {seed}");
        assert!(query::subset_eq(&a.intersect(&b), &b), "seed {seed}");
        assert!(
            query::is_empty(&a.intersect(&a.complement())),
            "seed {seed}"
        );
        match query::counterexample(&a, &b) {
            Some(w) => {
                assert!(!query::subset_eq(&a, &b), "seed {seed}");
                assert!(query::contains(&a, &w), "seed {seed}");
                assert!(!query::contains(&b, &w), "seed {seed}");
            }
            None => assert!(query::subset_eq(&a, &b), "seed {seed}"),
        }
        match query::distinguish(&a, &b) {
            Some(w) => {
                assert!(!query::equals(&a, &b), "seed {seed}");
                assert_ne!(
                    query::contains(&a, &w),
                    query::contains(&b, &w),
                    "seed {seed}: separator must be accepted by exactly one side"
                );
            }
            None => assert!(query::equals(&a, &b), "seed {seed}"),
        }
    }
}

/// The same two laws for nondeterministic NWAs. Instances are kept tiny
/// (two states, one symbol, a handful of transitions): `complement`
/// determinizes via the `2^{s²}` summary-set construction, and the law
/// `equals(a, aᶜᶜ)` then squares that size again through the product.
#[test]
fn decide_laws_nnwa() {
    for seed in 0..prop_iters(6) as u64 {
        let a = random_nnwa(2, 1, seed);
        assert!(
            query::equals(&a, &a.complement().complement()),
            "seed {seed}"
        );
        let b = random_nnwa(2, 1, seed + 1000);
        assert!(query::subset_eq(&a.intersect(&b), &a), "seed {seed}");
        assert!(
            query::is_empty(&a.intersect(&a.complement())),
            "seed {seed}"
        );
        match query::distinguish(&a, &b) {
            Some(w) => {
                assert_ne!(
                    query::contains(&a, &w),
                    query::contains(&b, &w),
                    "seed {seed}: separator must be accepted by exactly one side"
                );
            }
            None => assert!(query::equals(&a, &b), "seed {seed}"),
        }
    }
}

/// The same two laws for DFAs, with the explanation laws: the
/// counterexample/separator exists iff the inclusion/equivalence fails, and
/// is accepted by exactly the side it should be.
#[test]
fn decide_laws_dfa() {
    for seed in 0..prop_iters(20) as u64 {
        let a = random_dfa(4, 2, seed);
        let b = random_dfa(3, 2, seed + 1000);
        assert!(
            query::equals(&a, &a.complement().complement()),
            "seed {seed}"
        );
        assert!(query::subset_eq(&a.intersect(&b), &a), "seed {seed}");
        assert!(
            query::is_empty(&a.intersect(&a.complement())),
            "seed {seed}"
        );
        match query::counterexample(&a, &b) {
            Some(w) => {
                assert!(query::contains(&a, &w[..]), "seed {seed}");
                assert!(!query::contains(&b, &w[..]), "seed {seed}");
            }
            None => assert!(query::subset_eq(&a, &b), "seed {seed}"),
        }
        match query::distinguish(&a, &b) {
            Some(w) => assert_ne!(
                query::contains(&a, &w[..]),
                query::contains(&b, &w[..]),
                "seed {seed}: separator must be accepted by exactly one side"
            ),
            None => assert!(query::equals(&a, &b), "seed {seed}"),
        }
    }
}

/// The same two laws for deterministic stepwise tree automata, with the
/// explanation laws over witness trees.
#[test]
fn decide_laws_stepwise() {
    for seed in 0..prop_iters(20) as u64 {
        let a = random_stepwise(3, 2, seed);
        let b = random_stepwise(2, 2, seed + 1000);
        assert!(
            query::equals(&a, &a.complement().complement()),
            "seed {seed}"
        );
        assert!(query::subset_eq(&a.intersect(&b), &a), "seed {seed}");
        assert!(
            query::is_empty(&a.intersect(&a.complement())),
            "seed {seed}"
        );
        match query::counterexample(&a, &b) {
            Some(t) => {
                assert!(query::contains(&a, &t), "seed {seed}");
                assert!(!query::contains(&b, &t), "seed {seed}");
            }
            None => assert!(query::subset_eq(&a, &b), "seed {seed}"),
        }
        match query::distinguish(&a, &b) {
            Some(t) => assert_ne!(
                query::contains(&a, &t),
                query::contains(&b, &t),
                "seed {seed}: separator must be accepted by exactly one side"
            ),
            None => assert!(query::equals(&a, &b), "seed {seed}"),
        }
    }
}

// --------------------------------------------------------------------------
// Acceptor agreement with the legacy per-model entry points
// --------------------------------------------------------------------------

/// `Acceptor::accepts` (via `query::contains`) agrees with the legacy
/// inherent membership methods on random nested words, and determinization
/// preserves the answers.
#[test]
fn acceptor_agrees_with_legacy_membership_nwa() {
    let ab = Alphabet::ab();
    let cfg = NestedWordConfig {
        len: 30,
        allow_pending: true,
        ..Default::default()
    };
    for seed in 0..prop_iters(8) as u64 {
        let m = random_det_nwa(3, 2, seed);
        let n = Nnwa::from_deterministic(&m);
        for wseed in 0..15u64 {
            let w = random_nested_word(&ab, cfg, wseed);
            let legacy = m.accepts(&w);
            assert_eq!(query::contains(&m, &w), legacy, "seed {seed}/{wseed}");
            assert_eq!(query::contains(&n, &w), legacy, "seed {seed}/{wseed}");
        }
    }
}

/// The same agreement for DFAs on random flat words and for stepwise tree
/// automata on random trees.
#[test]
fn acceptor_agrees_with_legacy_membership_word_and_tree() {
    let ab = Alphabet::ab();
    let mut rng = Prng::new(0x5EED);
    for seed in 0..prop_iters(10) as u64 {
        let d = random_dfa(4, 2, seed);
        for _ in 0..20 {
            let w: Vec<usize> = (0..rng.below(20)).map(|_| rng.below(2)).collect();
            assert_eq!(query::contains(&d, &w[..]), d.accepts(&w), "seed {seed}");
        }

        let ta = random_stepwise(3, 2, seed);
        for tseed in 0..20u64 {
            let t = random_tree(&ab, 1 + rng.below(20), 3, tseed);
            assert_eq!(
                query::contains(&ta, &t),
                ta.accepts(&t),
                "seed {seed}/{tseed}"
            );
        }
    }
}
