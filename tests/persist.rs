//! Property tests for the persistence subsystem (`Persist` / `Suspend`):
//!
//! * **round-trip equality** — `query::load(query::save(a)) == a`,
//!   structurally, for every compiled engine (warm memo caches included);
//! * **resume ≡ continue** — suspending at *every* prefix and resuming on
//!   a reloaded artifact observes the same verdict, step count and peak
//!   memory as the uninterrupted run at every subsequent prefix, pending
//!   edges included, and the final snapshots coincide;
//! * **run ↔ lane interchange** — `suspend_run` / `suspend_lane`
//!   snapshots resume as either kind of run;
//! * **typed rejection** — corrupt bytes (truncated anywhere, or any byte
//!   flipped, header and payload alike) and cross-artifact snapshots are
//!   typed [`PersistError`]s, never panics or silent misreads.
//!
//! Cases are drawn from the suite's seeded generators (no crates.io access,
//! so no proptest); every failure is reproducible from the printed context.

mod common;

use common::{
    prop_iters, random_det_nwa, random_dfa, random_nnwa_with_transitions, random_stepwise,
};
use nested_words_suite::nested_words::generate::{
    random_nested_word, random_tree, NestedWordConfig,
};
use nested_words_suite::nwa::joinless::joinless_from_nwa;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

fn random_streams(count: usize, len: usize) -> Vec<Vec<TaggedSymbol>> {
    let ab = Alphabet::ab();
    let cfg = NestedWordConfig {
        len,
        allow_pending: true,
        ..Default::default()
    };
    (0..count as u64)
        .map(|seed| random_nested_word(&ab, cfg, seed).to_tagged())
        .collect()
}

fn tree_streams(count: usize) -> Vec<Vec<TaggedSymbol>> {
    let ab = Alphabet::ab();
    (0..count as u64)
        .map(|seed| random_tree(&ab, 9, 3, seed).to_tagged())
        .collect()
}

/// The resume ≡ continue law, checked exhaustively: for every prefix of
/// `events`, suspend there, resume on `load(save(artifact))`, and require
/// the continued run to observe exactly what the uninterrupted run
/// observes at every subsequent prefix — verdict, event count and peak
/// memory — with coinciding final snapshots.
fn check_suspend_everywhere<A: Suspend>(artifact: &A, events: &[TaggedSymbol], ctx: &str) {
    // The uninterrupted reference: observables at every prefix. (For the
    // memoizing summary engine this also warms the cache along the whole
    // stream, so the reload below ships every summary the cuts will need
    // and interned ids agree across the two artifacts.)
    let mut reference = Vec::with_capacity(events.len() + 1);
    let mut full = artifact.lane_start();
    reference.push(artifact.lane_outcome(&full));
    for &event in events {
        artifact.lane_step(&mut full, event);
        reference.push(artifact.lane_outcome(&full));
    }

    let reloaded: A = query::load(&query::save(artifact)).expect(ctx);
    for cut in 0..=events.len() {
        let mut lane = artifact.lane_start();
        for &event in &events[..cut] {
            artifact.lane_step(&mut lane, event);
        }
        let snapshot = query::suspend(artifact, &lane);
        // The snapshot round-trips through bytes like the artifact does.
        let snapshot = Snapshot::from_bytes(&snapshot.to_bytes()).expect(ctx);
        let mut resumed = query::resume(&reloaded, &snapshot).expect(ctx);
        assert_eq!(
            reloaded.lane_outcome(&resumed),
            reference[cut],
            "{ctx}, cut {cut}"
        );
        for (offset, &event) in events[cut..].iter().enumerate() {
            reloaded.lane_step(&mut resumed, event);
            assert_eq!(
                reloaded.lane_outcome(&resumed),
                reference[cut + 1 + offset],
                "{ctx}, cut {cut}, offset {offset}"
            );
        }
        assert_eq!(
            reloaded.suspend_lane(&resumed),
            artifact.suspend_lane(&full),
            "{ctx}, cut {cut}: final snapshots diverge"
        );
    }
}

/// The run ↔ lane interchange law at a single cut: a snapshot taken from a
/// borrowing run resumes as a lane and vice versa, with identical
/// observables either way.
fn check_run_lane_interchange<A: Suspend>(artifact: &A, events: &[TaggedSymbol], ctx: &str) {
    let cut = events.len() / 2;
    let mut run = artifact.start();
    let mut lane = artifact.lane_start();
    for &event in &events[..cut] {
        run.step(event);
        artifact.lane_step(&mut lane, event);
    }
    let from_run = artifact.suspend_run(&run);
    let from_lane = artifact.suspend_lane(&lane);
    assert_eq!(from_run, from_lane, "{ctx}: run and lane snapshots differ");

    let mut as_lane = artifact.resume_lane(&from_run).expect(ctx);
    let mut as_run = artifact.resume_run(&from_lane).expect(ctx);
    for &event in &events[cut..] {
        artifact.lane_step(&mut as_lane, event);
        as_run.step(event);
    }
    let lane_outcome = artifact.lane_outcome(&as_lane);
    assert_eq!(lane_outcome.accepted, as_run.is_accepting(), "{ctx}");
    assert_eq!(lane_outcome.events, as_run.steps(), "{ctx}");
    assert_eq!(lane_outcome.peak_memory, as_run.peak_memory(), "{ctx}");
}

/// Corruption of the byte image — truncation at every length, every byte
/// flipped — is a typed error, never a panic and never a silent `Ok`.
fn check_corruption_rejected<A: Suspend + std::fmt::Debug>(artifact: &A, ctx: &str) {
    let bytes = query::save(artifact);
    for cut in 0..bytes.len() {
        assert!(
            query::load::<A>(&bytes[..cut]).is_err(),
            "{ctx}: truncation to {cut} bytes decoded"
        );
    }
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        assert!(
            query::load::<A>(&bad).is_err(),
            "{ctx}: flipped byte {i} decoded"
        );
    }
}

#[test]
fn compiled_nwa_round_trips_and_resumes_everywhere() {
    let streams = random_streams(prop_iters(6), 18);
    for seed in 0..4u64 {
        let compiled = random_det_nwa(4, 2, seed).compile();
        let reloaded: CompiledNwa = query::load(&query::save(&compiled)).unwrap();
        assert_eq!(reloaded, compiled, "seed {seed}");
        for (i, events) in streams.iter().enumerate() {
            check_suspend_everywhere(&compiled, events, &format!("nwa seed {seed}, stream {i}"));
            check_run_lane_interchange(&compiled, events, &format!("nwa seed {seed}, stream {i}"));
        }
    }
}

#[test]
fn compiled_summary_engines_round_trip_and_resume_everywhere() {
    let streams = random_streams(prop_iters(4), 14);
    for seed in 0..3u64 {
        let nnwa = random_nnwa_with_transitions(3, 2, 9, seed);
        let compiled = nnwa.compile();
        for (i, events) in streams.iter().enumerate() {
            check_suspend_everywhere(&compiled, events, &format!("nnwa seed {seed}, stream {i}"));
            check_run_lane_interchange(&compiled, events, &format!("nnwa seed {seed}, stream {i}"));
        }
        // After the runs above the memo cache is warm; the warm cache is
        // part of the artifact and of its structural equality.
        let reloaded: CompiledSummary<Nnwa> = query::load(&query::save(&compiled)).unwrap();
        assert_eq!(reloaded, compiled, "nnwa seed {seed}");

        let joinless = joinless_from_nwa(&nnwa);
        let compiled = joinless.compile();
        for (i, events) in streams.iter().enumerate() {
            check_suspend_everywhere(
                &compiled,
                events,
                &format!("joinless seed {seed}, stream {i}"),
            );
        }
        let reloaded: CompiledSummary<JoinlessNwa> = query::load(&query::save(&compiled)).unwrap();
        assert_eq!(reloaded, compiled, "joinless seed {seed}");
    }
}

#[test]
fn compiled_tagged_dfa_round_trips_and_resumes_everywhere() {
    let streams = random_streams(prop_iters(6), 18);
    for seed in 0..4u64 {
        // A tagged DFA reads Σ̂, so the raw DFA has 3·σ symbols (σ = 2).
        let compiled = random_dfa(5, 6, seed).compile();
        let reloaded: CompiledTaggedDfa = query::load(&query::save(&compiled)).unwrap();
        assert_eq!(reloaded, compiled, "seed {seed}");
        for (i, events) in streams.iter().enumerate() {
            check_suspend_everywhere(&compiled, events, &format!("dfa seed {seed}, stream {i}"));
            check_run_lane_interchange(&compiled, events, &format!("dfa seed {seed}, stream {i}"));
        }
    }
}

#[test]
fn compiled_stepwise_ta_round_trips_and_resumes_everywhere() {
    // Both genuine tree encodings (meaningful verdicts) and arbitrary
    // nested-word streams (the engine parks them in its dead state — which
    // must survive suspension like any other state).
    let mut streams = tree_streams(prop_iters(4));
    streams.extend(random_streams(2, 12));
    for seed in 0..4u64 {
        let compiled = random_stepwise(3, 2, seed).compile();
        let reloaded: CompiledStepwiseTA = query::load(&query::save(&compiled)).unwrap();
        assert_eq!(reloaded, compiled, "seed {seed}");
        for (i, events) in streams.iter().enumerate() {
            check_suspend_everywhere(
                &compiled,
                events,
                &format!("stepwise seed {seed}, stream {i}"),
            );
            check_run_lane_interchange(
                &compiled,
                events,
                &format!("stepwise seed {seed}, stream {i}"),
            );
        }
    }
}

#[test]
fn corrupt_bytes_are_typed_errors_for_every_engine() {
    check_corruption_rejected(&random_det_nwa(3, 2, 7).compile(), "compiled nwa");
    check_corruption_rejected(&random_dfa(3, 6, 7).compile(), "compiled tagged dfa");
    check_corruption_rejected(&random_stepwise(3, 2, 7).compile(), "compiled stepwise ta");
    let nnwa = random_nnwa_with_transitions(3, 2, 8, 7);
    // Warm the cache so the corrupt image also sweeps the memo sections.
    let compiled = nnwa.compile();
    for events in random_streams(2, 10) {
        let mut lane = compiled.lane_start();
        for event in events {
            compiled.lane_step(&mut lane, event);
        }
    }
    check_corruption_rejected(&compiled, "compiled summary (warm cache)");
    check_corruption_rejected(&joinless_from_nwa(&nnwa).compile(), "compiled joinless");
}

#[test]
fn artifacts_reject_foreign_bytes_and_foreign_snapshots() {
    let nwa_artifact = random_det_nwa(3, 2, 1).compile();
    let dfa_artifact = random_dfa(3, 6, 1).compile();

    // Bytes of one kind do not load as another: typed WrongKind.
    assert!(matches!(
        query::load::<CompiledTaggedDfa>(&query::save(&nwa_artifact)),
        Err(PersistError::WrongKind { .. })
    ));
    assert!(matches!(
        query::load::<CompiledNwa>(&query::save(&dfa_artifact)),
        Err(PersistError::WrongKind { .. })
    ));

    // A snapshot parked by one artifact does not resume on a different
    // artifact of the same kind: typed FingerprintMismatch.
    let other = random_det_nwa(3, 2, 2).compile();
    let mut lane = nwa_artifact.lane_start();
    nwa_artifact.lane_step(&mut lane, TaggedSymbol::Call(Symbol(0)));
    let snapshot = query::suspend(&nwa_artifact, &lane);
    assert!(matches!(
        query::resume(&other, &snapshot),
        Err(PersistError::FingerprintMismatch { .. })
    ));
    // It does resume on a byte-identical reload.
    let reloaded: CompiledNwa = query::load(&query::save(&nwa_artifact)).unwrap();
    assert!(query::resume(&reloaded, &snapshot).is_ok());
}
