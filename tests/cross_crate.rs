//! Cross-crate integration tests: the paper's correspondences between
//! automaton models, exercised end to end through the unified
//! `prelude`/`query` facade — no per-crate decision functions.

use nested_words_suite::nested_words::generate::{random_tree, random_well_matched};
use nested_words_suite::nwa::bottom_up::from_stepwise;
use nested_words_suite::nwa::flat::{from_tagged_dfa, tagged_indices, to_tagged_dfa};
use nested_words_suite::prelude::*;
use nested_words_suite::query;

/// Theorem 2 end to end: a regular property of the tagged encoding, compiled
/// through regex → DFA → flat NWA → DFA, agrees everywhere.
#[test]
fn theorem2_flat_nwa_word_automaton_correspondence() {
    let sigma = 2usize;
    // property: the document contains a b-labelled call followed later by an
    // a-labelled return (over the tagged alphabet)
    let b_call = TaggedSymbol::Call(Symbol(1)).tagged_index(sigma);
    let a_ret = TaggedSymbol::Return(Symbol(0)).tagged_index(sigma);
    let regex = Regex::any_star()
        .concat(Regex::Symbol(b_call))
        .concat(Regex::any_star())
        .concat(Regex::Symbol(a_ret))
        .concat(Regex::any_star());
    let dfa = query::minimize(&regex.to_nfa(3 * sigma).determinize());
    let flat = from_tagged_dfa(&dfa, sigma);
    assert_eq!(flat.num_states(), dfa.num_states());
    let back = to_tagged_dfa(&flat);
    assert!(query::equals(&dfa, &back));

    let ab = Alphabet::ab();
    for seed in 0..40 {
        let w = random_well_matched(&ab, 40, seed);
        assert_eq!(
            query::contains(&flat, &w),
            query::contains(&dfa, &tagged_indices(&w, sigma)[..]),
            "seed {seed}"
        );
    }
}

/// Lemma 1 end to end: a stepwise bottom-up tree automaton, its embedding as
/// a bottom-up NWA, and the original tree semantics agree on random trees.
#[test]
fn lemma1_stepwise_and_bottom_up_nwa_agree() {
    let a = Symbol(0);
    let b = Symbol(1);
    // stepwise automaton: the number of b-labelled nodes is even
    let mut ta = DetStepwiseTA::new(2, 2);
    ta.set_init(a, 0);
    ta.set_init(b, 1);
    for q in 0..2 {
        for r in 0..2 {
            ta.set_combine(q, r, q ^ r);
        }
    }
    ta.set_accepting(0, true);
    let nwa = from_stepwise(&ta);
    assert!(nwa.is_bottom_up());
    let alphabet = Alphabet::ab();
    for seed in 0..40 {
        let tree = random_tree(&alphabet, 15, 3, seed);
        assert_eq!(
            query::contains(&ta, &tree),
            query::contains(&nwa, &tree.to_nested_word()),
            "seed {seed}"
        );
    }
}

/// The decision-procedure stack: determinization, boolean operations and
/// emptiness compose into an equivalence check that agrees with itself.
#[test]
fn decision_procedures_compose() {
    let a = Symbol(0);
    let b = Symbol(1);
    // nondeterministic NWA: some matched call/return pair carries label b
    let mut builder = NnwaBuilder::new(3, 2).initial(0).accepting(2);
    for sym in [a, b] {
        builder = builder
            .internal(0, sym, 0)
            .internal(2, sym, 2)
            .call(0, sym, 0, 0)
            .call(2, sym, 2, 0);
        for h in [0usize, 1] {
            builder = builder.ret(0, h, sym, 0).ret(2, h, sym, 2);
        }
    }
    let n = builder.call(0, b, 0, 1).ret(0, 1, b, 2).build();

    assert!(!query::is_empty(&n));

    // Equivalence after a determinize/relax round trip. Checked on a sparse
    // one-symbol automaton (rooted words of even depth ≥ 2): `query::equals`
    // determinizes nondeterministic operands, and the dense b-block automaton
    // above would make that round trip quadratically larger.
    let mut sparse = NnwaBuilder::new(4, 1).initial(0).accepting(3);
    sparse = sparse.call(0, a, 1, 0).call(1, a, 0, 1);
    for lin in [0usize, 2] {
        sparse = sparse.ret(lin, 0, a, 2).ret(lin, 1, a, 2).ret(lin, 0, a, 3);
    }
    let sparse = sparse.build();
    let roundtrip = Nnwa::from_deterministic(&sparse.determinize());
    assert!(query::equals(&sparse, &roundtrip));

    // intersection with the complement is empty, and is included in anything
    let empty = sparse.intersect(&sparse.complement());
    assert!(query::is_empty(&empty));
    assert!(query::subset_eq(&empty, &sparse));

    // Determinization of the dense automaton is checked by membership
    // agreement on random nested words (a full `query::equals` on the
    // nondeterministic operands would re-determinize quadratically).
    let det = n.determinize();
    let ab = Alphabet::ab();
    let cfg = nested_words_suite::nested_words::generate::NestedWordConfig {
        len: 30,
        allow_pending: true,
        ..Default::default()
    };
    for seed in 0..40u64 {
        let w = nested_words_suite::nested_words::generate::random_nested_word(&ab, cfg, seed);
        assert_eq!(
            query::contains(&n, &w),
            query::contains(&det, &w),
            "seed {seed}"
        );
    }
    assert!(query::is_empty(&det.intersect(&det.complement())));
}

/// Lemma 4 in miniature: the equal-count pushdown NWA agrees with the CFG
/// baseline on flat words, both spoken through `query::contains`.
#[test]
fn lemma4_pnwa_matches_cfg_on_flat_words() {
    use nested_words_suite::nwa_pushdown::separations::equal_count_pnwa;
    let grammar = Cfg::equal_counts();
    let pnwa = equal_count_pnwa();
    for len in 0..=6usize {
        for bits in 0..(1u32 << len) {
            let word: Vec<usize> = (0..len).map(|i| ((bits >> i) & 1) as usize).collect();
            let nested = NestedWord::flat(word.iter().map(|&x| Symbol(x as u16)).collect());
            assert_eq!(
                query::contains(&grammar, &word[..]),
                query::contains(&pnwa, &nested),
                "word {word:?}"
            );
        }
    }
}

/// The same decision verbs work across all four required models — the
/// acceptance bar of the unified-API redesign.
#[test]
fn query_verbs_uniform_across_models() {
    // Nwa
    let a = Symbol(0);
    let nwa = NwaBuilder::new(1, 1, 0)
        .accepting(0)
        .internal(0, a, 0)
        .call(0, a, 0, 0)
        .ret(0, 0, a, 0)
        .build();
    assert!(!query::is_empty(&nwa));
    assert!(query::subset_eq(&nwa, &nwa));
    assert!(query::equals(&nwa, &nwa));
    assert!(query::contains(&nwa, &NestedWord::empty()));

    // Nnwa
    let nnwa = Nnwa::from_deterministic(&nwa);
    assert!(!query::is_empty(&nnwa));
    assert!(query::subset_eq(&nnwa, &nnwa));
    assert!(query::equals(&nnwa, &nnwa));
    assert!(query::contains(&nnwa, &NestedWord::empty()));

    // Dfa
    let dfa = DfaBuilder::new(1, 2, 0).accepting(0).build();
    assert!(!query::is_empty(&dfa));
    assert!(query::subset_eq(&dfa, &dfa));
    assert!(query::equals(&dfa, &dfa));
    assert!(query::contains(&dfa, &[0, 1][..]));

    // DetStepwiseTA
    let mut ta = DetStepwiseTA::new(1, 1);
    ta.set_init(a, 0);
    ta.set_accepting(0, true);
    assert!(!query::is_empty(&ta));
    assert!(query::subset_eq(&ta, &ta));
    assert!(query::equals(&ta, &ta));
    assert!(query::contains(&ta, &OrderedTree::leaf(a)));
}
