//! Cross-crate integration tests: the paper's correspondences between
//! automaton models, exercised end to end.

use nested_words::generate::{random_tree, random_well_matched};
use nested_words::{Alphabet, Symbol};
use nwa::bottom_up::from_stepwise;
use nwa::decision::{equivalent_nondet, is_empty};
use nwa::flat::{from_tagged_dfa, tagged_indices, to_tagged_dfa};
use nwa::nondet::Nnwa;
use tree_automata::DetStepwiseTA;
use word_automata::Regex;

/// Theorem 2 end to end: a regular property of the tagged encoding, compiled
/// through regex → DFA → flat NWA → DFA, agrees everywhere.
#[test]
fn theorem2_flat_nwa_word_automaton_correspondence() {
    let sigma = 2usize;
    // property: the document contains a b-labelled call followed later by an
    // a-labelled return (over the tagged alphabet)
    let b_call = nested_words::TaggedSymbol::Call(Symbol(1)).tagged_index(sigma);
    let a_ret = nested_words::TaggedSymbol::Return(Symbol(0)).tagged_index(sigma);
    let regex = Regex::any_star()
        .concat(Regex::Symbol(b_call))
        .concat(Regex::any_star())
        .concat(Regex::Symbol(a_ret))
        .concat(Regex::any_star());
    let dfa = regex.to_min_dfa(3 * sigma);
    let flat = from_tagged_dfa(&dfa, sigma);
    assert_eq!(flat.num_states(), dfa.num_states());
    let back = to_tagged_dfa(&flat);
    assert!(dfa.equivalent(&back));

    let ab = Alphabet::ab();
    for seed in 0..40 {
        let w = random_well_matched(&ab, 40, seed);
        assert_eq!(
            flat.accepts(&w),
            dfa.accepts(&tagged_indices(&w, sigma)),
            "seed {seed}"
        );
    }
}

/// Lemma 1 end to end: a stepwise bottom-up tree automaton, its embedding as
/// a bottom-up NWA, and the original tree semantics agree on random trees.
#[test]
fn lemma1_stepwise_and_bottom_up_nwa_agree() {
    let a = Symbol(0);
    let b = Symbol(1);
    // stepwise automaton: the number of b-labelled nodes is even
    let mut ta = DetStepwiseTA::new(2, 2);
    ta.set_init(a, 0);
    ta.set_init(b, 1);
    for q in 0..2 {
        for r in 0..2 {
            ta.set_combine(q, r, q ^ r);
        }
    }
    ta.set_accepting(0, true);
    let nwa = from_stepwise(&ta);
    assert!(nwa.is_bottom_up());
    let alphabet = Alphabet::ab();
    for seed in 0..40 {
        let tree = random_tree(&alphabet, 15, 3, seed);
        assert_eq!(
            ta.accepts(&tree),
            nwa.accepts(&tree.to_nested_word()),
            "seed {seed}"
        );
    }
}

/// The decision-procedure stack: determinization, boolean operations and
/// emptiness compose into an equivalence check that agrees with itself.
#[test]
fn decision_procedures_compose() {
    let a = Symbol(0);
    let b = Symbol(1);
    // nondeterministic NWA: some matched call/return pair carries label b
    let mut n = Nnwa::new(3, 2);
    n.add_initial(0);
    n.add_accepting(2);
    for sym in [a, b] {
        n.add_internal(0, sym, 0);
        n.add_internal(2, sym, 2);
        n.add_call(0, sym, 0, 0);
        n.add_call(2, sym, 2, 0);
        for h in [0usize, 1] {
            n.add_return(0, h, sym, 0);
            n.add_return(2, h, sym, 2);
        }
    }
    n.add_call(0, b, 0, 1);
    n.add_return(0, 1, b, 2);

    assert!(!is_empty(&n));
    let det = n.determinize();
    let roundtrip = Nnwa::from_deterministic(&det);
    assert!(equivalent_nondet(&n, &roundtrip));

    // intersection with the complement is empty
    let complement = Nnwa::from_deterministic(&nwa::boolean::complement(&det));
    let inter = nwa::boolean::intersect_nondet(&n, &complement);
    assert!(is_empty(&inter));
}

/// Lemma 4 in miniature: the equal-count pushdown NWA agrees with the CFG
/// baseline on flat words.
#[test]
fn lemma4_pnwa_matches_cfg_on_flat_words() {
    use nested_words::NestedWord;
    use nwa_pushdown::separations::equal_count_pnwa;
    use pushdown_automata::Cfg;
    let grammar = Cfg::equal_counts();
    let pnwa = equal_count_pnwa();
    for len in 0..=6usize {
        for bits in 0..(1u32 << len) {
            let word: Vec<usize> = (0..len).map(|i| ((bits >> i) & 1) as usize).collect();
            let nested = NestedWord::flat(word.iter().map(|&x| Symbol(x as u16)).collect());
            assert_eq!(
                grammar.derives(&word),
                pnwa.accepts(&nested),
                "word {word:?}"
            );
        }
    }
}
