//! Property tests for the streaming event-run subsystem: for every model
//! implementing both the batch and the streaming path, `query::contains`
//! and `query::contains_stream` must agree, and the streaming run's peak
//! memory must equal the input's open-call depth bound (§3.2: memory
//! proportional to depth, not length).
//!
//! Cases are drawn from the suite's seeded generators (no crates.io access,
//! so no proptest); every failure is reproducible from the printed seed.

mod common;

use common::{prop_iters, random_det_nwa, random_nnwa_with_transitions};
use nested_words_suite::nested_words::generate::{random_nested_word, NestedWordConfig};
use nested_words_suite::nested_words::rng::Prng;
use nested_words_suite::nwa::flat::tagged_indices;
use nested_words_suite::nwa::joinless::joinless_from_nwa;
use nested_words_suite::prelude::*;
use nested_words_suite::query;

/// The peak stack height a nested-word run needs: the maximum number of
/// simultaneously open calls over all prefixes (pending calls included).
fn open_call_peak(word: &NestedWord) -> usize {
    let mut open = 0usize;
    let mut peak = 0usize;
    for (kind, _) in word.positions() {
        match kind {
            PositionKind::Call => {
                open += 1;
                peak = peak.max(open);
            }
            PositionKind::Return => open = open.saturating_sub(1),
            PositionKind::Internal => {}
        }
    }
    peak
}

/// A random nondeterministic NWA, denser than the shared default (this
/// suite never determinizes, so density is affordable and exercises the
/// summary sets harder).
fn random_nnwa(num_states: usize, sigma: usize, seed: u64) -> Nnwa {
    random_nnwa_with_transitions(num_states, sigma, 3 * num_states, seed)
}

fn random_words(count: usize) -> Vec<NestedWord> {
    let ab = Alphabet::ab();
    let cfg = NestedWordConfig {
        len: 40,
        allow_pending: true,
        ..Default::default()
    };
    (0..count as u64)
        .map(|seed| random_nested_word(&ab, cfg, seed))
        .collect()
}

/// Batch and streaming membership agree for deterministic NWAs, and the
/// streaming run uses exactly the open-call peak of the word as stack.
#[test]
fn stream_agrees_with_batch_nwa() {
    let words = random_words(prop_iters(120));
    for seed in 0..5u64 {
        let m = random_det_nwa(3, 2, seed);
        for (i, w) in words.iter().enumerate() {
            let outcome = query::run_stream(&m, w.to_tagged());
            assert_eq!(
                outcome.accepted,
                query::contains(&m, w),
                "seed {seed}, word {i}"
            );
            assert_eq!(outcome.events, w.len(), "seed {seed}, word {i}");
            assert_eq!(
                outcome.peak_memory,
                open_call_peak(w),
                "seed {seed}, word {i}"
            );
        }
    }
}

/// The same for nondeterministic NWAs (on-the-fly summary-set simulation).
#[test]
fn stream_agrees_with_batch_nnwa() {
    let words = random_words(prop_iters(120));
    for seed in 0..5u64 {
        let n = random_nnwa(3, 2, seed);
        for (i, w) in words.iter().enumerate() {
            let outcome = query::run_stream(&n, w.to_tagged());
            assert_eq!(
                outcome.accepted,
                query::contains(&n, w),
                "seed {seed}, word {i}"
            );
            assert_eq!(
                outcome.peak_memory,
                open_call_peak(w),
                "seed {seed}, word {i}"
            );
        }
    }
}

/// The same for joinless NWAs: the streaming subset construction must agree
/// with the recursive reference evaluator on arbitrary words, pending edges
/// included.
#[test]
fn stream_agrees_with_batch_joinless() {
    let words = random_words(prop_iters(120));
    for seed in 0..3u64 {
        let j = joinless_from_nwa(&random_nnwa(2, 2, seed));
        for (i, w) in words.iter().enumerate() {
            let outcome = query::run_stream(&j, w.to_tagged());
            assert_eq!(
                outcome.accepted,
                query::contains(&j, w),
                "seed {seed}, word {i}"
            );
            assert_eq!(
                outcome.peak_memory,
                open_call_peak(w),
                "seed {seed}, word {i}"
            );
        }
    }
}

/// DFAs stream over the tagged alphabet Σ̂ with no stack at all; the batch
/// counterpart reads the tagged-index encoding of the word.
#[test]
fn stream_agrees_with_batch_tagged_dfa() {
    let sigma = 2usize;
    let words = random_words(prop_iters(120));
    let mut rng = Prng::new(0xD0F);
    for seed in 0..5u64 {
        let mut d = Dfa::new(3, 3 * sigma, 0);
        for q in 0..3 {
            d.set_accepting(q, rng.bool(0.5));
            for a in 0..3 * sigma {
                d.set_transition(q, a, rng.below(3));
            }
        }
        for (i, w) in words.iter().enumerate() {
            let outcome = query::run_stream(&d, w.to_tagged());
            let batch = query::contains(&d, &tagged_indices(w, sigma)[..]);
            assert_eq!(outcome.accepted, batch, "seed {seed}, word {i}");
            assert_eq!(outcome.peak_memory, 0, "seed {seed}, word {i}");
        }
    }
}

/// Mid-stream introspection: acceptance at every prefix matches the batch
/// answer on that prefix, and the stack height tracks the open calls.
#[test]
fn prefix_acceptance_matches_batch() {
    let words = random_words(prop_iters(40));
    let m = random_det_nwa(3, 2, 7);
    for (i, w) in words.iter().enumerate() {
        let tagged = w.to_tagged();
        let mut run = m.start();
        let mut open = 0usize;
        for (j, &event) in tagged.iter().enumerate() {
            run.step(event);
            match event.kind() {
                PositionKind::Call => open += 1,
                PositionKind::Return => open = open.saturating_sub(1),
                PositionKind::Internal => {}
            }
            let prefix = NestedWord::from_tagged(&tagged[..=j]);
            assert_eq!(
                run.is_accepting(),
                query::contains(&m, &prefix),
                "word {i}, prefix {j}"
            );
            assert_eq!(run.stack_height(), open, "word {i}, prefix {j}");
        }
    }
}
