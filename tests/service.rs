//! Property tests for the batched-execution subsystem (`BatchAcceptor`, the
//! `nwa-service` runners and the `DecisionService` facade).
//!
//! The two laws stated on `automata_core::BatchAcceptor` are checked for
//! every compiled engine, on seeded random tagged words with pending calls
//! and returns:
//!
//! 1. **lane ≡ run** — an owned lane stepped through a stream observes
//!    exactly what the borrowing `StreamRun` observes at *every prefix*
//!    (acceptance, events consumed, peak memory);
//! 2. **batch ≡ sequential** — `run_batch` over N streams returns, per
//!    lane, the `StreamOutcome` of running that stream alone.
//!
//! On top of that, the `DecisionService` is smoked multi-threaded: many
//! submitter threads against one service, every verdict compared against
//! `query::contains_stream` on the same compiled artifact.
//!
//! Cases are drawn from the suite's seeded generators (no crates.io access,
//! so no proptest); every failure is reproducible from the printed seed.

mod common;

use common::{prop_iters, random_det_nwa, random_dfa, random_nnwa_with_transitions};
use nested_words_suite::nested_words::generate::{random_nested_word, NestedWordConfig};
use nested_words_suite::nwa::joinless::joinless_from_nwa;
use nested_words_suite::nwa_service::{BatchRun, DecisionService, DynBatchRun, ServiceConfig};
use nested_words_suite::prelude::*;
use nested_words_suite::query;

fn random_words(count: usize, base_seed: u64) -> Vec<Vec<TaggedSymbol>> {
    let ab = Alphabet::ab();
    (0..count as u64)
        .map(|seed| {
            // Vary the length so batches exercise the tail-drain path, and
            // keep pending edges on so the sentinel/pending machinery of
            // every engine is in play.
            let cfg = NestedWordConfig {
                len: (seed as usize * 7) % 45,
                allow_pending: true,
                ..Default::default()
            };
            random_nested_word(&ab, cfg, base_seed + seed).to_tagged()
        })
        .collect()
}

/// Law 1 for one artifact on one stream: the lane's observables equal the
/// streaming run's at every prefix.
fn assert_lane_matches_run<A: BatchAcceptor>(a: &A, stream: &[TaggedSymbol], ctx: &str) {
    let mut lane = a.lane_start();
    let mut run = a.start();
    for (j, &event) in stream.iter().enumerate() {
        a.lane_step(&mut lane, event);
        run.step(event);
        assert_eq!(
            a.lane_accepting(&lane),
            run.is_accepting(),
            "{ctx}, prefix {j}: acceptance"
        );
        let outcome = a.lane_outcome(&lane);
        assert_eq!(outcome.events, run.steps(), "{ctx}, prefix {j}: events");
        assert_eq!(
            outcome.peak_memory,
            run.peak_memory(),
            "{ctx}, prefix {j}: peak memory"
        );
        assert_eq!(
            outcome.accepted,
            run.is_accepting(),
            "{ctx}, prefix {j}: outcome acceptance"
        );
    }
}

/// Law 2 for one artifact over a batch of streams, through all three
/// spellings of batched execution: the trait's `run_batch` (via the
/// `query::run_batch` facade), the const-lane `BatchRun`, and the
/// runtime-width `DynBatchRun`.
fn assert_batch_matches_sequential<A: BatchAcceptor>(
    a: &A,
    streams: &[Vec<TaggedSymbol>],
    ctx: &str,
) {
    let slices: Vec<&[TaggedSymbol]> = streams.iter().map(Vec::as_slice).collect();
    let sequential: Vec<StreamOutcome> = streams
        .iter()
        .map(|s| query::run_stream(a, s.iter().copied()))
        .collect();
    assert_eq!(query::run_batch(a, &slices), sequential, "{ctx}: run_batch");

    let mut dyn_run = DynBatchRun::new(a, slices.len());
    assert_eq!(dyn_run.run(&slices), sequential, "{ctx}: DynBatchRun");

    // Fixed-width lanes over chunks of 4, resetting between refills.
    let mut fixed: BatchRun<'_, A, 4> = BatchRun::new(a);
    for (chunk_index, chunk) in slices.chunks(4).enumerate() {
        for lane in 0..chunk.len() {
            fixed.reset(lane);
        }
        let common = chunk.iter().map(|s| s.len()).min().unwrap_or(0);
        for round in 0..common {
            for (lane, stream) in chunk.iter().enumerate() {
                fixed.step(lane, stream[round]);
            }
        }
        for (lane, stream) in chunk.iter().enumerate() {
            for &event in &stream[common..] {
                fixed.step(lane, event);
            }
        }
        for (lane, _) in chunk.iter().enumerate() {
            assert_eq!(
                fixed.outcome(lane),
                sequential[chunk_index * 4 + lane],
                "{ctx}: BatchRun chunk {chunk_index} lane {lane}"
            );
        }
    }
}

#[test]
fn lanes_match_streaming_runs_compiled_nwa() {
    let words = random_words(prop_iters(40), 0x1A);
    for seed in 0..5u64 {
        let c = random_det_nwa(3, 2, seed).compile();
        for (i, w) in words.iter().enumerate() {
            assert_lane_matches_run(&c, w, &format!("nwa seed {seed}, word {i}"));
        }
        assert_batch_matches_sequential(&c, &words, &format!("nwa seed {seed}"));
    }
}

#[test]
fn lanes_match_streaming_runs_compiled_summary() {
    let words = random_words(prop_iters(25), 0x2B);
    for seed in 0..4u64 {
        let n = random_nnwa_with_transitions(3, 2, 9, seed);
        let c = n.compile();
        for (i, w) in words.iter().enumerate() {
            assert_lane_matches_run(&c, w, &format!("nnwa seed {seed}, word {i}"));
        }
        assert_batch_matches_sequential(&c, &words, &format!("nnwa seed {seed}"));

        let j = joinless_from_nwa(&n);
        let cj = j.compile();
        for (i, w) in words.iter().enumerate() {
            assert_lane_matches_run(&cj, w, &format!("joinless seed {seed}, word {i}"));
        }
        assert_batch_matches_sequential(&cj, &words, &format!("joinless seed {seed}"));
    }
}

#[test]
fn lanes_match_streaming_runs_compiled_tagged_dfa() {
    let words = random_words(prop_iters(40), 0x3C);
    for seed in 0..5u64 {
        // Over the tagged alphabet Σ̂ for σ = 2, as the streaming DFA path
        // reads it.
        let c = random_dfa(4, 6, seed).compile();
        for (i, w) in words.iter().enumerate() {
            assert_lane_matches_run(&c, w, &format!("dfa seed {seed}, word {i}"));
        }
        assert_batch_matches_sequential(&c, &words, &format!("dfa seed {seed}"));
    }
}

/// Many submitter threads against one service: every verdict matches
/// `query::contains_stream` on the same compiled artifact, and the
/// service's own accounting balances.
#[test]
fn service_smoke_many_submitters_one_service() {
    let submitters = 6usize;
    let per_submitter = prop_iters(30);
    let m = random_det_nwa(4, 2, 0x5E);
    let reference = m.compile();
    let service = DecisionService::new(
        m.compile(),
        Alphabet::ab(),
        ServiceConfig {
            workers: 3,
            lanes: 4,
        },
    );

    std::thread::scope(|scope| {
        for t in 0..submitters {
            let service = &service;
            let reference = &reference;
            scope.spawn(move || {
                let words = random_words(per_submitter, 0x1000 * (t as u64 + 1));
                let handles: Vec<_> = words
                    .iter()
                    .map(|w| service.submit(w.clone()).unwrap())
                    .collect();
                for (i, (w, handle)) in words.iter().zip(&handles).enumerate() {
                    let outcome = handle.wait().unwrap();
                    assert_eq!(
                        outcome,
                        query::run_stream(reference, w.iter().copied()),
                        "submitter {t}, word {i}"
                    );
                    assert_eq!(
                        outcome.accepted,
                        query::contains_stream(reference, w.iter().copied()),
                        "submitter {t}, word {i}"
                    );
                }
            });
        }
    });

    let stats = service.stats();
    let total = (submitters * per_submitter) as u64;
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.queued, 0);
    assert_eq!(
        stats.workers.iter().map(|w| w.documents).sum::<u64>(),
        total
    );
}
